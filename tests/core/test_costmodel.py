"""Cost model formulas and calibration anchors."""

import pytest

from repro.config import CostModelConfig, SystemConfig
from repro.core.costmodel import CostModel


@pytest.fixture
def model():
    return CostModel(SystemConfig.paper_defaults().cost)


class TestFormulas:
    def test_probe_cost_scales_with_cross_product(self, model):
        one = model.probe_cost(1, 1_000_000)
        many = model.probe_cost(64, 1_000_000)
        assert many == pytest.approx(64 * one)

    def test_probe_cost_scales_with_scanned_bytes(self, model):
        small = model.probe_cost(10, 100_000)
        large = model.probe_cost(10, 1_000_000)
        assert large > small

    def test_zero_probe_is_free(self, model):
        assert model.probe_cost(0, 10**9) == 0.0

    def test_expire_and_tuning_costs(self, model):
        assert model.expire_cost(0) == 0.0
        assert model.expire_cost(1000) > 0.0
        assert model.tuning_cost(1000) > 0.0
        assert model.state_move_cost(1000) > 0.0


class TestCalibrationAnchors:
    """The documented anchors of repro/core/costmodel.py."""

    def test_no_tuning_crosses_saturation_at_3600(self, model):
        # N=4, no fine tuning: a probe scans the opposite stream's
        # whole partition; utilization hits 1.0 near 3600 t/s ...
        partition_bytes = 3600 * 600 * 64 / 60
        util = model.slave_capacity_estimate(3600.0, 4, partition_bytes)
        assert util == pytest.approx(1.0, rel=0.05)

    def test_no_tuning_visibly_overloaded_at_4000(self, model):
        # ... so that at 4000 t/s (Figure 8's blow-up point) the system
        # is clearly past capacity.
        partition_bytes = 4000 * 600 * 64 / 60
        util = model.slave_capacity_estimate(4000.0, 4, partition_bytes)
        assert util > 1.1

    def test_tuning_saturates_near_6000(self, model):
        # With tuning the mean scan is ~1.125 MB (half of the mean
        # mini-group size of 1.5*theta).
        util = model.slave_capacity_estimate(6000.0, 4, 1.125e6)
        assert util == pytest.approx(1.0, rel=0.1)

    def test_single_slave_saturates_below_2500(self, model):
        partition_bytes = 2500 * 600 * 64 / 60 / 2  # tuned scan ~ theta-ish
        util = model.slave_capacity_estimate(2500.0, 1, min(partition_bytes, 1.125e6))
        assert util > 1.0

    def test_scaled_config_preserves_utilization(self):
        """scaled() keeps the utilization at any rate invariant."""
        base = SystemConfig.paper_defaults()
        scaled = base.scaled(0.05)
        for rate in (2000.0, 4000.0, 6000.0):
            part = lambda cfg: cfg.rate_partition_bytes if False else (
                rate * cfg.window_seconds * cfg.tuple_bytes / cfg.npart
            )
            u_full = CostModel(base.cost).slave_capacity_estimate(
                rate, 4, part(base)
            )
            u_scaled = CostModel(scaled.cost).slave_capacity_estimate(
                rate, 4, part(scaled)
            )
            assert u_scaled == pytest.approx(u_full, rel=1e-9)


class TestValidation:
    def test_negative_cost_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            CostModel(CostModelConfig(scan_byte_cost=-1.0))
