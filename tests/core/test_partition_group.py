"""Partition-groups: routing, fine-tuning policy, state movement."""

import numpy as np

from repro.core.hashing import directory_hash
from repro.core.partition_group import JoinGeometry, PartitionGroup
from repro.data.tuples import TupleBatch


def ingest(group, sid, rows):
    """Directly append committed tuples through the head-block path."""
    batch = TupleBatch.build(
        ts=[r[0] for r in rows],
        key=[r[1] for r in rows],
        seq=[r[2] for r in rows],
        stream=sid,
    )
    patterns, buckets = group.route(batch.key)
    for pattern in sorted(buckets):
        mini = buckets[pattern].payload
        idx = np.flatnonzero(patterns == pattern)
        sub = batch.take(idx)
        window = mini.windows[sid]
        pos = 0
        while pos < len(sub):
            take = min(window.head_space(), len(sub) - pos)
            chunk = sub.slice(pos, pos + take)
            window.append_fresh(chunk.ts, chunk.key, chunk.seq)
            pos += take
            if window.head_space() == 0:
                window.flush(mini.windows[1 - sid], group.geometry.window_seconds)
    for bucket in group.directory.buckets():
        bucket.payload.flush_all()


def fill(group, n, sid=0, t0=0.0):
    ingest(group, sid, [(t0 + i * 0.01, i * 31 + sid, i) for i in range(n)])


class TestRouting:
    def test_route_groups_by_bucket_not_slot(self, geometry):
        """After one split at depth < global depth, several slots alias
        one bucket; routing must return one segment per bucket."""
        group = PartitionGroup(0, geometry)
        fill(group, 64)
        while group.oversized_buckets():
            group.split_bucket(group.oversized_buckets()[0])
        keys = np.arange(500, dtype=np.int64)
        patterns, buckets = group.route(keys)
        assert set(np.unique(patterns)) == set(buckets)
        ids = [id(b) for b in buckets.values()]
        assert len(ids) == len(set(ids))  # distinct buckets only

    def test_route_matches_directory_lookup(self, geometry):
        group = PartitionGroup(0, geometry)
        fill(group, 200)
        while group.oversized_buckets():
            group.split_bucket(group.oversized_buckets()[0])
        keys = np.arange(300, dtype=np.int64)
        patterns, buckets = group.route(keys)
        for key, pattern in zip(keys, patterns):
            expected = group.directory.bucket_for(int(directory_hash(
                np.array([key], dtype=np.int64))[0]))
            assert buckets[int(pattern)] is expected


class TestFineTuningPolicy:
    def test_oversized_detection(self, geometry):
        group = PartitionGroup(0, geometry)
        # theta = 3 blocks of 4 tuples -> oversized needs > 24 tuples
        # of 64 B across both streams (2*theta = 1536 B = 6 blocks).
        fill(group, 64)
        assert group.oversized_buckets()

    def test_split_reduces_max_bucket(self, geometry):
        group = PartitionGroup(0, geometry)
        fill(group, 128)
        before = max(b.payload.bytes_used for b in group.directory.buckets())
        while group.oversized_buckets():
            group.split_bucket(group.oversized_buckets()[0])
        after = max(b.payload.bytes_used for b in group.directory.buckets())
        assert after < before
        assert group.n_mini_groups > 1

    def test_split_conserves_tuples(self, geometry):
        group = PartitionGroup(0, geometry)
        fill(group, 100)
        total = group.n_tuples
        while group.oversized_buckets():
            group.split_bucket(group.oversized_buckets()[0])
        assert group.n_tuples == total

    def test_merge_conserves_tuples_and_order(self, geometry):
        group = PartitionGroup(0, geometry)
        fill(group, 100)
        while group.oversized_buckets():
            group.split_bucket(group.oversized_buckets()[0])
        total = group.n_tuples
        # Expire most tuples to force undersized buckets.
        for bucket in group.directory.buckets():
            bucket.payload.expire_before(0.9)
        merged_any = False
        for bucket in list(group.directory.buckets()):
            if group.directory.bucket_for(bucket.pattern) is bucket:
                if group.try_merge_bucket(bucket):
                    merged_any = True
        assert merged_any
        assert group.n_tuples <= total
        for bucket in group.directory.buckets():
            for window in bucket.payload.windows:
                assert np.all(np.diff(window.committed.ts) >= 0)

    def test_merge_respects_size_cap(self, geometry):
        group = PartitionGroup(0, geometry)
        fill(group, 128)
        while group.oversized_buckets():
            group.split_bucket(group.oversized_buckets()[0])
        # All buckets still hold data; merging two would exceed 2*theta
        # unless their combined size is small.
        for bucket in group.directory.buckets():
            buddy = group.directory.buddy_of(bucket)
            if buddy is None:
                continue
            combined = bucket.payload.bytes_used + buddy.payload.bytes_used
            if combined >= 2 * geometry.theta_bytes:
                assert group.try_merge_bucket(bucket) == 0


class TestStateMovement:
    def test_extract_install_roundtrip(self, geometry):
        src = PartitionGroup(3, geometry)
        fill(src, 150)
        while src.oversized_buckets():
            src.split_bucket(src.oversized_buckets()[0])
        n_tuples = src.n_tuples
        n_groups = src.n_mini_groups

        state = src.extract_state()
        assert src.n_tuples == 0
        assert state.pid == 3
        assert state.n_tuples == n_tuples

        dst = PartitionGroup(3, geometry)
        dst.install_state(state)
        assert dst.n_tuples == n_tuples
        assert dst.n_mini_groups == n_groups
        dst.directory.check_invariants()

    def test_install_preserves_routing(self, geometry):
        """After a move, every key routes to a bucket actually holding
        that key's tuples."""
        src = PartitionGroup(0, geometry)
        rows = [(i * 0.01, i * 13, i) for i in range(120)]
        ingest(src, 0, rows)
        while src.oversized_buckets():
            src.split_bucket(src.oversized_buckets()[0])
        state = src.extract_state()
        dst = PartitionGroup(0, geometry)
        dst.install_state(state)
        keys = np.array([r[1] for r in rows], dtype=np.int64)
        patterns, buckets = dst.route(keys)
        for key, pattern in zip(keys, patterns):
            window = buckets[int(pattern)].payload.windows[0]
            assert key in set(window.committed.key)

    def test_install_into_nonempty_rejected(self, geometry):
        src = PartitionGroup(0, geometry)
        fill(src, 32)
        state = src.extract_state()
        dst = PartitionGroup(0, geometry)
        fill(dst, 8)
        import pytest

        with pytest.raises(ValueError, match="non-empty"):
            dst.install_state(state)

    def test_payload_bytes(self, geometry):
        src = PartitionGroup(0, geometry)
        fill(src, 32)
        state = src.extract_state()
        assert state.payload_bytes(64) == 32 * 64
