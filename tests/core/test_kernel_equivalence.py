"""Property-based equivalence wall around the join kernels.

Every kernel in the registry must produce the *identical* joined-pair
multiset as the naive O(n*m) oracle — for any committed contents, any
probe batch, any interleaving of appends, flushes and watermark-driven
expiry.  The strategies deliberately cover the cases the ISSUE calls
out: duplicate keys, all-equal keys, empty windows and batches,
unsorted probe batches, and the exact ``|a.ts - b.ts| == W`` inclusive
boundary (integer timestamps and integer windows make exact-distance
collisions common rather than measure-zero).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import available_kernels, make_kernel
from repro.core.partition_group import JoinGeometry, MiniGroup
from repro.core.window import StreamWindow
from tests.conftest import brute_force_pairs

KERNELS = available_kernels()


def geometry_for(kernel, tpb=4, window=10.0, fine_tuning=False):
    return JoinGeometry(
        tuples_per_block=tpb,
        block_bytes=tpb * 64,
        theta_bytes=tpb * 64 * 3,
        window_seconds=window,
        fine_tuning=fine_tuning,
        tuple_bytes=64,
        n_streams=2,
        kernel=kernel,
    )


def sorted_pairs(rows):
    arr = np.asarray(sorted(rows), dtype=np.int64).reshape(-1, 2)
    return arr.tolist()


# ---------------------------------------------------------------------------
# Window-level: one probe batch against arbitrary committed contents.
# ---------------------------------------------------------------------------
@st.composite
def probe_case(draw):
    n_keys = draw(st.integers(1, 5))  # 1 => all keys equal
    keys = st.integers(0, n_keys - 1)
    # Integer timestamps + integer window => |dt| == W happens often.
    window = float(draw(st.integers(0, 8)))
    n_committed = draw(st.integers(0, 40))
    committed_ts = sorted(
        draw(
            st.lists(
                st.integers(0, 25), min_size=n_committed, max_size=n_committed
            )
        )
    )
    committed_key = draw(
        st.lists(keys, min_size=n_committed, max_size=n_committed)
    )
    n_probe = draw(st.integers(0, 15))
    probe_ts = draw(
        st.lists(st.integers(0, 25), min_size=n_probe, max_size=n_probe)
    )  # deliberately NOT sorted
    probe_key = draw(st.lists(keys, min_size=n_probe, max_size=n_probe))
    cutoff = draw(st.one_of(st.none(), st.integers(0, 25)))
    return window, committed_ts, committed_key, probe_ts, probe_key, cutoff


@pytest.mark.parametrize("kernel", KERNELS)
@given(case=probe_case())
@settings(max_examples=120, deadline=None)
def test_probe_matches_brute_force(kernel, case):
    """kernel.probe == O(n*m) oracle, including after expiry and with
    window contents appended directly to the SoA (the split/merge path
    that bypasses the head-block protocol)."""
    window_s, c_ts, c_key, p_ts, p_key, cutoff = case
    win = StreamWindow(0, 4, 256, kernel=kernel)
    c_ts = np.array(c_ts, dtype=np.float64)
    c_key = np.array(c_key, dtype=np.int64)
    c_seq = np.arange(len(c_ts), dtype=np.int64)
    win.committed.append(c_ts, c_key, c_seq)
    if cutoff is not None:
        win.expire_before(float(cutoff))
        live = c_ts >= cutoff
        c_ts, c_key, c_seq = c_ts[live], c_key[live], c_seq[live]
    p_ts = np.array(p_ts, dtype=np.float64)
    p_key = np.array(p_key, dtype=np.int64)
    p_seq = np.arange(1000, 1000 + len(p_ts), dtype=np.int64)

    result = win.probe_committed(p_ts, p_key, p_seq, window_s, collect_pairs=True)

    expected = brute_force_pairs(p_ts, p_key, p_seq, c_ts, c_key, c_seq, window_s)
    got = [tuple(r) for r in result.pairs.tolist()]
    assert sorted(got) == sorted(expected)  # multiset equality
    assert result.n_pairs == len(expected)
    # The scan-bytes accounting must never go negative or exceed what a
    # full scan could touch.
    assert 0 <= win.probe_scan_bytes(p_key, 64)


# ---------------------------------------------------------------------------
# Protocol-level: arbitrary interleavings of appends, flushes and
# watermark expiry, all kernels run side by side on the same ops.
# ---------------------------------------------------------------------------
@st.composite
def interleavings(draw):
    n_keys = draw(st.integers(1, 5))
    n = draw(st.integers(1, 40))
    ops = []
    for _ in range(n):
        kind = draw(
            st.sampled_from(["append", "append", "append", "flush", "expire"])
        )
        if kind == "append":
            ops.append(
                (
                    "append",
                    draw(st.integers(0, 1)),
                    float(draw(st.integers(0, 3))),
                    draw(st.integers(0, n_keys - 1)),
                )
            )
        elif kind == "flush":
            ops.append(("flush", draw(st.integers(0, 1)), None, None))
        else:
            ops.append(("expire", None, None, None))
    return ops


@given(ops=interleavings(), tpb=st.integers(1, 4), window=st.integers(1, 12))
@settings(max_examples=100, deadline=None)
def test_all_kernels_exactly_once_under_interleaving(ops, tpb, window):
    """Every kernel emits every valid pair exactly once, and all kernels
    agree pairwise, under arbitrary append/flush/expire interleavings.

    Expiry uses the join module's watermark rule (cutoff = oldest
    pending tuple minus W), which is exactly what makes dropping
    committed tuples lossless — so the full-trace brute force stays the
    correct oracle even though windows shrink mid-run.
    """
    window = float(window)
    minis = {k: MiniGroup(geometry_for(k, tpb=tpb, window=window)) for k in KERNELS}
    clock = 0.0
    seqs = {0: 0, 1: 0}
    rows = {0: [], 1: []}
    found = {k: [] for k in KERNELS}
    pending = {0: [], 1: []}  # unflushed (fresh) tuple timestamps

    def flush(sid):
        for k, mini in minis.items():
            result = mini.flush_stream(sid, collect_pairs=True)
            pairs = result.pairs
            if pairs is not None and len(pairs):
                if sid == 1:
                    pairs = pairs[:, ::-1]
                found[k].extend(map(tuple, pairs.tolist()))
        pending[sid].clear()

    for op in ops:
        if op[0] == "append":
            _, sid, dt, key = op
            clock += dt
            if minis[KERNELS[0]].windows[sid].head_space() == 0:
                flush(sid)
            for mini in minis.values():
                mini.windows[sid].append_fresh(
                    np.array([clock]),
                    np.array([key], dtype=np.int64),
                    np.array([seqs[sid]], dtype=np.int64),
                )
            rows[sid].append((clock, key, seqs[sid]))
            pending[sid].append(clock)
            seqs[sid] += 1
        elif op[0] == "flush":
            flush(op[1])
        else:
            oldest = min(pending[0] + pending[1], default=clock)
            cutoff = oldest - window
            for mini in minis.values():
                mini.expire_before(cutoff)

    flush(0)
    flush(1)

    expected = brute_force_pairs(
        np.array([r[0] for r in rows[0]]),
        np.array([r[1] for r in rows[0]]),
        np.array([r[2] for r in rows[0]]),
        np.array([r[0] for r in rows[1]]),
        np.array([r[1] for r in rows[1]]),
        np.array([r[2] for r in rows[1]]),
        window,
    )
    for k in KERNELS:
        assert set(found[k]) == expected, f"kernel {k} diverged from oracle"
        assert len(found[k]) == len(expected), f"kernel {k} duplicated pairs"
    for k in KERNELS[1:]:
        assert sorted_pairs(found[k]) == sorted_pairs(found[KERNELS[0]])


# ---------------------------------------------------------------------------
# Deterministic edge cases.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
class TestEdgeCases:
    def test_exact_window_boundary_is_inclusive(self, kernel):
        win = StreamWindow(0, 4, 256, kernel=kernel)
        win.committed.append(
            np.array([0.0, 0.0, 5.0]),
            np.array([7, 7, 7], dtype=np.int64),
            np.array([0, 1, 2], dtype=np.int64),
        )
        # |10.0 - 0.0| == W exactly: both ts=0 tuples must match.
        r = win.probe_committed(
            np.array([10.0]),
            np.array([7], dtype=np.int64),
            np.array([100], dtype=np.int64),
            10.0,
            collect_pairs=True,
        )
        assert sorted(map(tuple, r.pairs.tolist())) == [
            (100, 0), (100, 1), (100, 2),
        ]
        # One epsilon beyond: only the duplicate pair at ts=5 remains.
        r = win.probe_committed(
            np.array([np.nextafter(10.0, 11.0)]),
            np.array([7], dtype=np.int64),
            np.array([100], dtype=np.int64),
            10.0,
            collect_pairs=True,
        )
        assert sorted(map(tuple, r.pairs.tolist())) == [(100, 2)]

    def test_empty_window_and_empty_batch(self, kernel):
        win = StreamWindow(0, 4, 256, kernel=kernel)
        empty_f = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        r = win.probe_committed(
            np.array([1.0]), np.array([3], dtype=np.int64),
            np.array([0], dtype=np.int64), 10.0, collect_pairs=True,
        )
        assert r.n_pairs == 0 and len(r.pairs) == 0
        win.committed.append(
            np.array([1.0]), np.array([3], dtype=np.int64),
            np.array([0], dtype=np.int64),
        )
        r = win.probe_committed(empty_f, empty_i, empty_i, 10.0, collect_pairs=True)
        assert r.n_pairs == 0 and len(r.pairs) == 0
        assert win.probe_scan_bytes(empty_i, 64) >= 0

    def test_unsorted_probe_batch(self, kernel):
        """Probe batches need not be timestamp-sorted (post-move
        shipments); both kernels must handle them identically."""
        win = StreamWindow(0, 4, 256, kernel=kernel)
        win.committed.append(
            np.array([0.0, 4.0, 9.0]),
            np.array([1, 1, 1], dtype=np.int64),
            np.array([0, 1, 2], dtype=np.int64),
        )
        p_ts = np.array([9.5, 0.5, 20.0])
        p_key = np.array([1, 1, 1], dtype=np.int64)
        p_seq = np.array([100, 101, 102], dtype=np.int64)
        r = win.probe_committed(p_ts, p_key, p_seq, 5.0, collect_pairs=True)
        expected = brute_force_pairs(
            p_ts, p_key, p_seq,
            np.array([0.0, 4.0, 9.0]), p_key, np.array([0, 1, 2]), 5.0,
        )
        assert sorted(map(tuple, r.pairs.tolist())) == sorted(expected)

    def test_probe_after_direct_soa_append(self, kernel):
        """split_by_bit/merged/install_committed write straight to the
        SoA; the kernel must pick the tuples up without any hook."""
        win = StreamWindow(0, 4, 256, kernel=kernel)
        kern = win.kernel
        kern.warm()  # build derived state while the window is empty
        win.committed.append(
            np.array([1.0, 2.0]),
            np.array([5, 6], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
        )
        r = win.probe_committed(
            np.array([2.5, 2.5]),
            np.array([5, 6], dtype=np.int64),
            np.array([100, 101], dtype=np.int64),
            10.0,
            collect_pairs=True,
        )
        assert sorted(map(tuple, r.pairs.tolist())) == [(100, 0), (101, 1)]

    def test_warm_then_probe_equals_cold_probe(self, kernel):
        """A kernel rebuilt from the SoA (crash restore) must behave as
        one that observed every mutation live."""
        ts = np.array([0.0, 1.0, 2.0, 8.0])
        key = np.array([4, 4, 9, 4], dtype=np.int64)
        seq = np.arange(4, dtype=np.int64)
        live = StreamWindow(0, 4, 256, kernel=kernel)
        live.committed.append(ts, key, seq)
        live.kernel.warm()
        live.expire_before(1.5)

        restored = StreamWindow(0, 4, 256, kernel=kernel)
        keep = ts >= 1.5
        restored.committed.append(ts[keep], key[keep], seq[keep])
        restored.kernel.warm()

        p = (
            np.array([5.0]),
            np.array([4], dtype=np.int64),
            np.array([100], dtype=np.int64),
        )
        a = live.probe_committed(*p, 10.0, collect_pairs=True)
        b = restored.probe_committed(*p, 10.0, collect_pairs=True)
        assert sorted(map(tuple, a.pairs.tolist())) == sorted(
            map(tuple, b.pairs.tolist())
        ) == [(100, 3)]
