"""Property test of the head-block protocol at the window-pair level.

The paper's Section IV-D rules — fresh tuples join when the head block
fills or the buffer drains, fresh tuples of the opposite stream are
omitted, completeness is preserved — must together yield exactly-once
emission of every valid pair, for any interleaving of arrivals, block
boundaries and flush points.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition_group import JoinGeometry, MiniGroup
from tests.conftest import brute_force_pairs


@st.composite
def interleavings(draw):
    """A sequence of ops: (stream, ts-increment, key) appends plus
    explicit flush points."""
    n = draw(st.integers(1, 40))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["append", "append", "append", "flush"]))
        if kind == "append":
            ops.append(
                (
                    "append",
                    draw(st.integers(0, 1)),
                    draw(st.floats(0.0, 1.5)),
                    draw(st.integers(0, 4)),
                )
            )
        else:
            ops.append(("flush", draw(st.integers(0, 1)), None, None))
    return ops


@given(ops=interleavings(), tpb=st.integers(1, 5), window=st.floats(0.5, 30))
@settings(max_examples=150, deadline=None)
def test_head_block_protocol_exactly_once(ops, tpb, window):
    geometry = JoinGeometry(
        tuples_per_block=tpb,
        block_bytes=tpb * 64,
        theta_bytes=tpb * 64 * 3,
        window_seconds=window,
        fine_tuning=False,
        tuple_bytes=64,
    )
    mini = MiniGroup(geometry)
    clock = 0.0
    seqs = {0: 0, 1: 0}
    rows = {0: [], 1: []}
    found = []

    def flush(sid):
        result = mini.flush_stream(sid, collect_pairs=True)
        if result.pairs is not None and len(result.pairs):
            pairs = result.pairs
            if sid == 1:
                pairs = pairs[:, ::-1]
            found.extend(map(tuple, pairs.tolist()))

    for op in ops:
        if op[0] == "append":
            _, sid, dt, key = op
            clock += dt
            window_obj = mini.windows[sid]
            if window_obj.head_space() == 0:
                flush(sid)
            window_obj.append_fresh(
                np.array([clock]),
                np.array([key], dtype=np.int64),
                np.array([seqs[sid]], dtype=np.int64),
            )
            rows[sid].append((clock, key, seqs[sid]))
            seqs[sid] += 1
        else:
            flush(op[1])

    # Final drain: flush both streams (buffer-empty rule).
    flush(0)
    flush(1)

    expected = brute_force_pairs(
        np.array([r[0] for r in rows[0]]),
        np.array([r[1] for r in rows[0]]),
        np.array([r[2] for r in rows[0]]),
        np.array([r[0] for r in rows[1]]),
        np.array([r[1] for r in rows[1]]),
        np.array([r[2] for r in rows[1]]),
        window,
    )
    assert set(found) == expected
    assert len(found) == len(expected)  # exactly once, never twice
