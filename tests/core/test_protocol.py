"""Protocol messages: wire sizes and structure."""

import numpy as np

from repro.core.metrics import DelayStats
from repro.core.protocol import (
    Activate,
    CONTROL_BYTES,
    Halt,
    LoadReport,
    MoveAck,
    MoveDirective,
    ReorgOrder,
    REPORT_BYTES,
    RESULT_REPORT_BYTES,
    ResultReport,
    Shipment,
    SlaveSync,
    StateTransfer,
)
from repro.data.tuples import TupleBatch


def batch(n):
    return TupleBatch.build(ts=np.arange(float(n)), key=np.arange(n))


class TestWireBytes:
    def test_shipment_scales_with_tuples(self):
        s = Shipment(0, 0.0, 2.0, batch(100))
        assert s.wire_bytes(64) == CONTROL_BYTES + 100 * 64

    def test_empty_shipment_is_control_sized(self):
        s = Shipment(0, 0.0, 2.0, TupleBatch.empty())
        assert s.wire_bytes(64) == CONTROL_BYTES

    def test_reports_are_fixed_size(self):
        report = LoadReport(1, 0.5, 0.6, 1024)
        assert report.wire_bytes(64) == REPORT_BYTES
        sync = SlaveSync(1, report)
        assert sync.wire_bytes(64) == REPORT_BYTES
        rr = ResultReport(1, DelayStats())
        assert rr.wire_bytes(64) == RESULT_REPORT_BYTES

    def test_control_messages(self):
        assert Halt(0).wire_bytes(64) == CONTROL_BYTES
        assert Activate(0).wire_bytes(64) == CONTROL_BYTES
        assert MoveAck(0, "supplier").wire_bytes(64) == CONTROL_BYTES

    def test_reorg_order_scales_with_moves(self):
        bare = ReorgOrder(1)
        busy = ReorgOrder(
            1,
            outgoing=(MoveDirective(1, 2, 3),),
            incoming=(MoveDirective(4, 5, 6), MoveDirective(7, 8, 9)),
        )
        assert busy.wire_bytes(64) > bare.wire_bytes(64)

    def test_state_transfer_counts_window_and_buffer(self):
        from repro.core.partition_group import (
            GroupState,
            PartitionGroupState,
        )

        state = PartitionGroupState(
            0,
            0,
            (
                GroupState(
                    0,
                    0,
                    ((batch(10), batch(2)), (batch(5), TupleBatch.empty())),
                ),
            ),
        )
        transfer = StateTransfer(0, state, batch(3))
        assert transfer.wire_bytes(64) == CONTROL_BYTES + (17 + 3) * 64


class TestMoveDirective:
    def test_fields(self):
        mv = MoveDirective(7, 1, 2)
        assert mv.pid == 7
        assert mv.src == 1
        assert mv.dst == 2
