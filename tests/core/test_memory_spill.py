"""Memory-limited slaves and disk spill (paper's future-work extension)."""

import numpy as np
import pytest

from repro import JoinSystem, SystemConfig
from repro.config import CostModelConfig
from repro.core.costmodel import CostModel
from repro.errors import ConfigError
from repro.reference import naive_window_join
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer


class TestSpillCost:
    def test_probe_cost_includes_disk_term(self):
        model = CostModel(CostModelConfig())
        in_memory = model.probe_cost(10, 100_000, spilled_bytes=0)
        spilled = model.probe_cost(10, 100_000, spilled_bytes=50_000)
        assert spilled > in_memory
        assert spilled - in_memory == pytest.approx(
            CostModelConfig().disk_read_byte_cost * 50_000
        )

    def test_disk_term_not_multiplied_by_tuples(self):
        """Disk is read once per probe block, not per tuple."""
        model = CostModel(CostModelConfig())
        one = model.probe_cost(1, 0, spilled_bytes=1000)
        many = model.probe_cost(64, 0, spilled_bytes=1000)
        disk = CostModelConfig().disk_read_byte_cost * 1000
        assert one - model.probe_cost(1, 0) == pytest.approx(disk)
        assert many - model.probe_cost(64, 0) == pytest.approx(disk)


class TestSpillFraction:
    def test_unlimited_memory_never_spills(self, geometry, metrics, cost_model):
        from repro.core.join_module import JoinModule

        module = JoinModule(0, geometry, cost_model, 4, metrics)
        assert module.spill_fraction() == 0.0

    def test_fraction_tracks_excess(self, geometry, metrics, cost_model):
        from repro.core.join_module import JoinModule
        from repro.core.protocol import Shipment
        from repro.data.tuples import TupleBatch

        module = JoinModule(
            0, geometry, cost_model, 4, metrics, memory_bytes=512
        )
        for pid in range(4):
            module.add_partition(pid)
        n = 64
        batch = TupleBatch.build(
            ts=np.linspace(0, 1, n), key=np.arange(n) * 7, stream=0
        )
        module.enqueue(Shipment(0, 0.0, 1.0, batch))
        while module.has_work:
            for unit in module.work_units():
                unit.execute(1.0)
        assert module.window_bytes > 512
        expected = 1.0 - 512 / module.window_bytes
        assert module.spill_fraction() == pytest.approx(expected)


class TestConfig:
    def test_default_unlimited(self):
        assert SystemConfig.paper_defaults().slave_memory_bytes is None

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig.paper_defaults().with_(slave_memory_bytes=16)

    def test_scaled_shrinks_memory(self):
        cfg = SystemConfig.paper_defaults().with_(
            slave_memory_bytes=10 * 1024 * 1024
        )
        assert cfg.scaled(0.1).slave_memory_bytes == 1024 * 1024

    def test_scaled_keeps_none(self):
        assert SystemConfig.paper_defaults().scaled(0.1).slave_memory_bytes is None


class TestMemoryLimitedCluster:
    def test_spill_slows_but_stays_exact(self, tiny_cfg):
        cfg = tiny_cfg.with_(rate=800.0)
        share = int(
            2 * cfg.rate * cfg.window_seconds * cfg.tuple_bytes / cfg.num_slaves
        )
        limited = cfg.with_(slave_memory_bytes=max(4096, share // 4))

        wl = TwoStreamWorkload.poisson_bmodel(
            RngRegistry(31), cfg.rate, cfg.b_skew, cfg.key_domain
        )
        trace = wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)

        full = JoinSystem(
            cfg, collect_pairs=True, workload=TraceReplayer(trace)
        ).run()
        spilling = JoinSystem(
            limited, collect_pairs=True, workload=TraceReplayer(trace)
        ).run()

        # Same results...
        expected = naive_window_join(trace, cfg.window_seconds)
        for result in (full, spilling):
            got = result.pairs
            got = got[np.lexsort((got[:, 1], got[:, 0]))]
            assert np.array_equal(got, expected)
        # ...but the memory-limited run paid disk time.
        disk = sum(s["disk_bytes_read"] for s in spilling.slaves)
        assert disk > 0
        assert sum(s["disk_bytes_read"] for s in full.slaves) == 0
        assert spilling.avg_cpu_time > full.avg_cpu_time
