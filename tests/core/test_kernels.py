"""Unit tests of the kernel registry, index internals and cost dispatch."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.costmodel import CostModel
from repro.core.cluster import geometry_of
from repro.core.kernels import (
    JoinKernel,
    available_kernels,
    get_kernel,
    make_kernel,
    register_kernel,
)
from repro.core.kernels.blocknlj import BlockNLJKernel
from repro.core.kernels.indexed import SWEEP_MIN_DEAD, IndexedKernel, _Bucket
from repro.core.window import StreamWindow
from repro.errors import ConfigError


class TestRegistry:
    def test_builtins_registered(self):
        assert available_kernels() == ["blocknlj", "indexed"]
        assert get_kernel("blocknlj") is BlockNLJKernel
        assert get_kernel("indexed") is IndexedKernel

    def test_unknown_kernel_lists_available(self):
        with pytest.raises(ConfigError, match="blocknlj.*indexed"):
            get_kernel("btree")

    def test_unnamed_kernel_rejected(self):
        class Nameless(BlockNLJKernel):
            name = ""

        with pytest.raises(ValueError, match="non-empty name"):
            register_kernel(Nameless)

    def test_make_kernel_attaches_window(self):
        win = StreamWindow(0, 4, 256)
        kern = make_kernel("indexed", win)
        assert isinstance(kern, IndexedKernel)
        assert kern.window is win

    def test_window_defaults_to_blocknlj(self):
        assert isinstance(StreamWindow(0, 4, 256).kernel, BlockNLJKernel)


class TestBucket:
    def test_append_grows_geometrically(self):
        b = _Bucket(capacity=2)
        b.append(np.arange(10, dtype=np.int64))
        b.append(np.arange(10, 15, dtype=np.int64))
        assert b.n == 15
        assert b.live(0).tolist() == list(range(15))

    def test_live_prunes_dead_prefix(self):
        b = _Bucket()
        b.append(np.array([3, 7, 9, 12], dtype=np.int64))
        assert b.live(8).tolist() == [9, 12]
        assert b.start == 2  # prune is remembered
        assert b.live(0).tolist() == [9, 12]  # floor never goes back

    def test_compact_reclaims(self):
        b = _Bucket()
        b.append(np.array([3, 7, 9], dtype=np.int64))
        assert b.compact(9) == 1
        assert b.start == 0
        assert b.live(0).tolist() == [9]
        assert b.compact(100) == 0


def _filled_window(kernel="indexed", n=10, key=5):
    win = StreamWindow(0, 4, 256, kernel=kernel)
    win.committed.append(
        np.arange(n, dtype=np.float64),
        np.full(n, key, dtype=np.int64),
        np.arange(n, dtype=np.int64),
    )
    return win


class TestIndexedMaintenance:
    def test_sync_is_incremental(self):
        win = _filled_window(n=6)
        kern = win.kernel
        kern.sync()
        assert kern.n_indexed == 6
        win.committed.append(
            np.array([6.0]), np.array([5], dtype=np.int64),
            np.array([6], dtype=np.int64),
        )
        kern.sync()
        assert kern.n_indexed == 7

    def test_lazy_expiry_defers_index_work(self):
        win = _filled_window(n=8)
        kern = win.kernel
        kern.sync()
        win.expire_before(5.0)
        # Nothing removed from the index yet (lazy) ...
        assert kern.n_indexed == 8
        # ... but probes only see live tuples (and prune the prefix).
        r = win.probe_committed(
            np.array([5.0]), np.array([5], dtype=np.int64),
            np.array([100], dtype=np.int64), 100.0, collect_pairs=True,
        )
        assert sorted(p[1] for p in r.pairs.tolist()) == [5, 6, 7]
        assert kern.n_indexed == 3

    def test_sweep_reclaims_after_bulk_expiry(self):
        n = 3 * SWEEP_MIN_DEAD
        win = StreamWindow(0, 4, 256, kernel="indexed")
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 50, size=n)
        win.committed.append(
            np.arange(n, dtype=np.float64),
            keys.astype(np.int64),
            np.arange(n, dtype=np.int64),
        )
        kern = win.kernel
        kern.sync()
        # Expire all but a sliver: dead (n - 64) >> live (64) and >> floor.
        win.expire_before(float(n - 64))
        kern.sync()
        assert kern.n_indexed <= 64
        assert kern.n_buckets <= 50

    def test_empty_buckets_deleted_by_sweep(self):
        n = SWEEP_MIN_DEAD + 2
        win = StreamWindow(0, 4, 256, kernel="indexed")
        keys = np.arange(n, dtype=np.int64)  # all distinct keys
        win.committed.append(
            np.arange(n, dtype=np.float64), keys, np.arange(n, dtype=np.int64)
        )
        kern = win.kernel
        kern.sync()
        assert kern.n_buckets == n
        win.expire_before(float(n - 1))
        kern.sync()
        assert kern.n_buckets == 1


class TestCostDispatch:
    def test_indexed_probe_cost_scales_with_candidates_not_window(self):
        model = CostModel(SystemConfig.paper_defaults().cost)
        nlj = BlockNLJKernel.probe_cost(model, 64, 1_000_000, 0)
        idx = IndexedKernel.probe_cost(model, 64, 2_048, 0)
        assert idx < nlj
        # The NLJ cross product multiplies bytes by n; indexed does not.
        assert model.indexed_probe_cost(64, 1_000_000) < model.probe_cost(
            64, 1_000_000
        )

    def test_indexed_cost_charges_lookup(self):
        cfg = SystemConfig.paper_defaults().cost
        model = CostModel(cfg)
        base = model.indexed_probe_cost(10, 0)
        assert base == pytest.approx(
            10 * (cfg.tuple_cost + cfg.index_lookup_cost)
        )
        assert model.indexed_probe_cost(0, 12345) == 0.0

    def test_probe_scan_bytes_granularity(self):
        win_nlj = _filled_window(kernel="blocknlj", n=10)
        win_idx = _filled_window(kernel="indexed", n=10)
        probe = np.array([5], dtype=np.int64)
        # Block-NLJ charges whole committed blocks regardless of keys.
        assert win_nlj.probe_scan_bytes(probe, 64) == win_nlj.committed_bytes
        # The index charges exactly the candidate tuples.
        assert win_idx.probe_scan_bytes(probe, 64) == 10 * 64
        assert (
            win_idx.probe_scan_bytes(np.array([99], dtype=np.int64), 64) == 0
        )


class TestConfigPlumbing:
    def test_geometry_carries_kernel(self):
        cfg = SystemConfig(kernel="indexed")
        assert geometry_of(cfg).kernel == "indexed"

    def test_unknown_kernel_rejected_at_build(self):
        with pytest.raises(ConfigError, match="unknown join kernel"):
            geometry_of(SystemConfig(kernel="btree"))

    def test_nway_requires_blocknlj(self):
        cfg = SystemConfig(n_streams=3, kernel="indexed")
        with pytest.raises(ConfigError, match="n_streams=2"):
            geometry_of(cfg)
        geometry_of(SystemConfig(n_streams=3))  # default kernel is fine

    def test_config_validates_kernel_string(self):
        with pytest.raises(ConfigError, match="kernel"):
            SystemConfig(kernel="").validated()

    def test_subclass_hooks(self):
        assert issubclass(BlockNLJKernel, JoinKernel)
        assert issubclass(IndexedKernel, JoinKernel)
