"""The slave join module: buffering, work units, exactness on one node."""

import numpy as np
import pytest

from repro.core.costmodel import CostModel
from repro.core.join_module import JoinModule
from repro.core.metrics import MeasurementWindow, SlaveMetrics
from repro.core.protocol import Shipment
from repro.config import SystemConfig
from repro.errors import ProtocolError
from repro.reference import naive_window_join
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload


def make_module(geometry, npart=4, collect_pairs=False, gate_start=0.0):
    metrics = SlaveMetrics(0, MeasurementWindow(gate_start))
    module = JoinModule(
        0,
        geometry,
        CostModel(SystemConfig.paper_defaults().cost),
        npart,
        metrics,
        collect_pairs=collect_pairs,
    )
    for pid in range(npart):
        module.add_partition(pid)
    return module, metrics


def process_all(module, emit_time=100.0):
    total_cost = 0.0
    while module.has_work:  # passes are bounded to one batch per pid
        for unit in module.work_units():
            assert unit.cost >= 0.0
            total_cost += unit.cost
            unit.execute(emit_time)
    return total_cost


def workload_batch(t0, t1, rate=200.0, seed=0, domain=1000):
    wl = TwoStreamWorkload.poisson_bmodel(
        RngRegistry(seed), rate, 0.7, domain
    )
    return wl.generate(t0, t1)


class TestBuffering:
    def test_enqueue_tracks_pending_bytes(self, geometry):
        module, _ = make_module(geometry)
        batch = workload_batch(0.0, 2.0)
        module.enqueue(Shipment(0, 0.0, 2.0, batch))
        assert module.pending_bytes == len(batch) * geometry.tuple_bytes
        assert module.has_work

    def test_processing_drains_pending(self, geometry):
        module, metrics = make_module(geometry)
        batch = workload_batch(0.0, 2.0)
        module.enqueue(Shipment(0, 0.0, 2.0, batch))
        process_all(module)
        assert module.pending_bytes == 0
        assert not module.has_work
        assert metrics.tuples_processed == len(batch)

    def test_occupancy(self, geometry):
        module, _ = make_module(geometry)
        batch = workload_batch(0.0, 2.0)
        module.enqueue(Shipment(0, 0.0, 2.0, batch))
        expected = len(batch) * geometry.tuple_bytes / 4096
        assert module.occupancy(4096) == pytest.approx(expected)

    def test_unowned_partition_rejected(self, geometry):
        module, _ = make_module(geometry, npart=4)
        module.extract_partition(2)
        batch = workload_batch(0.0, 4.0)
        with pytest.raises(ProtocolError, match="does not own|it does not own"):
            module.enqueue(Shipment(0, 0.0, 4.0, batch))

    def test_empty_shipment_is_fine(self, geometry):
        module, _ = make_module(geometry)
        from repro.data.tuples import TupleBatch

        module.enqueue(Shipment(0, 0.0, 2.0, TupleBatch.empty()))
        assert not module.has_work


class TestProcessing:
    def test_single_node_matches_oracle(self, geometry):
        module, metrics = make_module(geometry, collect_pairs=True)
        full = []
        for epoch in range(10):
            batch = workload_batch(epoch * 2.0, (epoch + 1) * 2.0, seed=1)
            full.append(batch)
            module.enqueue(Shipment(epoch, epoch * 2.0, (epoch + 1) * 2.0, batch))
            process_all(module, emit_time=(epoch + 1) * 2.0)
        from repro.data.tuples import TupleBatch

        trace = TupleBatch.concat(full)
        expected = naive_window_join(trace, geometry.window_seconds)
        got = (
            np.concatenate(metrics.pair_chunks())
            if metrics.pairs
            else np.empty((0, 2), dtype=np.int64)
        )
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        assert np.array_equal(got, expected)

    def test_window_bytes_grows_then_stabilizes(self, geometry):
        module, _ = make_module(geometry)
        sizes = []
        for epoch in range(30):
            batch = workload_batch(epoch * 2.0, (epoch + 1) * 2.0, seed=2)
            module.enqueue(Shipment(epoch, epoch * 2.0, (epoch + 1) * 2.0, batch))
            process_all(module)
            sizes.append(module.window_bytes)
        # Window = 10 s = 5 epochs: size at epoch 25 ~ size at epoch 29.
        assert sizes[10] > sizes[2]
        assert abs(sizes[-1] - sizes[-3]) < 0.5 * sizes[-1]

    def test_expiry_uses_oldest_pending_timestamp(self, geometry):
        """A late shipment carrying old tuples (post-move) must not be
        preceded by an over-aggressive expiry."""
        module, metrics = make_module(geometry, collect_pairs=True)
        from repro.data.tuples import TupleBatch

        early = TupleBatch.build(ts=[0.0], key=[7], seq=[0], stream=0)
        module.enqueue(Shipment(0, 0.0, 2.0, early))
        process_all(module)
        # A shipment whose epoch_start is recent but carrying an old
        # tuple (window = 10 s, partner at ts=0 still valid for ts=9).
        late = TupleBatch.build(ts=[9.0], key=[7], seq=[100], stream=1)
        module.enqueue(Shipment(5, 9.5, 11.5, late))
        process_all(module)
        got = np.concatenate(metrics.pair_chunks())
        assert got.tolist() == [[0, 100]]

    def test_unsorted_shipment_watermark_uses_true_minimum(self, geometry):
        """Regression: the pending watermark once read ``ts[0]`` instead
        of ``ts.min()``.  A shipment whose *first* tuple is newer than a
        later one (moved-state replays are concatenations, not sorted
        merges) then over-advanced expiry and silently dropped pairs."""
        module, metrics = make_module(geometry, collect_pairs=True)
        from repro.data.tuples import TupleBatch

        partner = TupleBatch.build(ts=[0.2], key=[7], seq=[0], stream=0)
        module.enqueue(Shipment(0, 0.0, 2.0, partner))
        process_all(module)
        # Unsorted batch: first ts is 9.0, true oldest is 0.5.  With a
        # 10 s window the cutoff from ts.min() keeps the ts=0.2 partner
        # alive; a first-element watermark would have expired it.
        jumbled = TupleBatch.build(
            ts=[9.0, 0.5], key=[7, 7], seq=[100, 101], stream=[1, 1]
        )
        assert float(jumbled.ts[0]) > float(jumbled.ts.min())
        module.enqueue(Shipment(5, 9.5, 11.5, jumbled))
        process_all(module)
        got = np.concatenate(metrics.pair_chunks())
        assert sorted(got.tolist()) == [[0, 100], [0, 101]]

    def test_watermark_scans_all_queued_batches(self, geometry):
        """Regression: the pending watermark once read only each queue's
        *head* batch when re-arming after a drain.  A later batch can
        hold older tuples (restore-replay queues a checkpointed
        mini-buffer ahead of logged shipments that overlap it), so a
        head-only watermark over-advanced expiry between passes and
        silently dropped the older batch's pairs."""
        module, metrics = make_module(geometry, collect_pairs=True)
        from repro.data.tuples import TupleBatch

        partner = TupleBatch.build(ts=[0.2], key=[7], seq=[0], stream=0)
        module.enqueue(Shipment(0, 0.0, 2.0, partner))
        process_all(module)
        # Three shipments queued for one partition before any pass runs
        # (at most one batch per partition drains per pass).  After
        # pass 1 pops b1, the queue is [b2, b3]: the head b2 is *newer*
        # than b3, so a head-only watermark (10.5) would set the pass-2
        # cutoff to 0.5 and expire the ts=0.2 partner that b3's ts=0.5
        # stream-1 tuple still joins against.
        b1 = TupleBatch.build(ts=[5.0], key=[7], seq=[10], stream=0)
        b2 = TupleBatch.build(ts=[10.5], key=[7], seq=[20], stream=0)
        b3 = TupleBatch.build(ts=[0.5], key=[7], seq=[101], stream=1)
        module.enqueue(Shipment(5, 11.0, 13.0, b1))
        module.enqueue(Shipment(6, 11.0, 13.0, b2))
        module.enqueue(Shipment(7, 11.0, 13.0, b3))
        process_all(module)
        got = np.concatenate(metrics.pair_chunks())
        # b3 joins every stream-0 tuple within W=10: the partner (0.3 s
        # apart), b1 (4.5 s) and b2 (exactly 10.0 s, inclusive).
        assert sorted(got.tolist()) == [[0, 101], [10, 101], [20, 101]]

    def test_rearm_watermark_after_extract_scans_all_batches(self, geometry):
        """The same all-batches rule applies when a partition move pops
        a mini-buffer and the watermark is re-derived from survivors."""
        from repro.core.hashing import partition_of
        from repro.data.tuples import TupleBatch

        module, _ = make_module(geometry, npart=4)
        pid = int(partition_of(np.array([1]), 4)[0])
        old = TupleBatch.build(ts=[40.0], key=[1], seq=[1], stream=0)
        module.enqueue(Shipment(0, 60.0, 62.0, old))
        # Push a *newer* head in front of it, as restore-replay ordering
        # can: the queue's oldest tuple is now behind the head.
        head = TupleBatch.build(ts=[45.0], key=[1], seq=[9], stream=0)
        module._minibuffers[pid].appendleft(head)
        module._rearm_watermark()
        assert module._oldest_pending_ts == 40.0

    def test_fine_tuning_splits_under_load(self, geometry):
        module, metrics = make_module(geometry, npart=1)
        for epoch in range(5):
            batch = workload_batch(epoch * 2.0, (epoch + 1) * 2.0, rate=500.0)
            module.enqueue(Shipment(epoch, epoch * 2.0, (epoch + 1) * 2.0, batch))
            process_all(module)
        assert metrics.splits > 0
        group = module.groups[0]
        assert group.n_mini_groups > 1

    def test_no_fine_tuning_keeps_single_minigroup(self, geometry):
        geometry = geometry._replace(fine_tuning=False)
        module, metrics = make_module(geometry, npart=1)
        for epoch in range(5):
            batch = workload_batch(epoch * 2.0, (epoch + 1) * 2.0, rate=500.0)
            module.enqueue(Shipment(epoch, epoch * 2.0, (epoch + 1) * 2.0, batch))
            process_all(module)
        assert metrics.splits == 0
        assert module.groups[0].n_mini_groups == 1

    def test_probe_cost_bounded_by_theta_with_tuning(self, geometry):
        """With fine tuning (and subdividable keys) every mini-group
        stays within ~2*theta bytes after maintenance."""
        module, _ = make_module(geometry, npart=1)
        max_scan = 0
        for epoch in range(8):
            batch = workload_batch(
                epoch * 2.0, (epoch + 1) * 2.0, rate=400.0, domain=10_000_001
            )
            module.enqueue(Shipment(epoch, epoch * 2.0, (epoch + 1) * 2.0, batch))
            for unit in module.work_units():
                unit.execute((epoch + 1) * 2.0)
            for bucket in module.groups[0].directory.buckets():
                max_scan = max(max_scan, bucket.payload.bytes_used)
        # Sizes measured after maintenance: within 2*theta plus the
        # block-rounding slack of the two streams' head blocks.
        assert max_scan <= 2 * geometry.theta_bytes + 2 * geometry.block_bytes

    def test_hot_key_bucket_stops_splitting(self, geometry):
        """A mini-group holding a single hot key cannot be subdivided;
        the tuning policy must leave it alone instead of blowing up the
        directory depth."""
        from repro.data.tuples import TupleBatch

        module, metrics = make_module(geometry, npart=1)
        n = 200  # far above 2*theta worth of tuples, all the same key
        hot = TupleBatch.build(
            ts=np.linspace(0, 1, n), key=np.full(n, 77), stream=0
        )
        module.enqueue(Shipment(0, 0.0, 1.0, hot))
        process_all(module)
        group = module.groups[0]
        assert group.directory.global_depth <= 1
        assert not group.oversized_buckets()


class TestStateMovement:
    def test_extract_includes_unprocessed_buffer(self, geometry):
        module, _ = make_module(geometry)
        batch = workload_batch(0.0, 2.0)
        module.enqueue(Shipment(0, 0.0, 2.0, batch))
        states = {}
        buffered_total = 0
        for pid in list(module.owned_pids()):
            state, buffered = module.extract_partition(pid)
            states[pid] = state
            buffered_total += len(buffered)
        assert buffered_total == len(batch)
        assert module.pending_bytes == 0

    def test_install_then_process_produces_pairs(self, geometry):
        src, src_metrics = make_module(geometry, npart=1, collect_pairs=True)
        batch = workload_batch(0.0, 4.0, rate=300.0, seed=5)
        src.enqueue(Shipment(0, 0.0, 4.0, batch))
        process_all(src)
        n_before = sum(len(p) for p in src_metrics.pair_chunks())

        state, buffered = src.extract_partition(0)
        dst, dst_metrics = make_module(geometry, npart=1, collect_pairs=True)
        dst.extract_partition(0)  # make room
        dst.install_partition(0, state, buffered)

        more = workload_batch(4.0, 8.0, rate=300.0, seed=6)
        dst.enqueue(Shipment(2, 4.0, 8.0, more))
        process_all(dst)
        assert sum(len(p) for p in dst_metrics.pair_chunks()) > 0
        assert n_before >= 0

    def test_double_add_rejected(self, geometry):
        module, _ = make_module(geometry)
        with pytest.raises(ProtocolError):
            module.add_partition(0)

    def test_extract_unowned_rejected(self, geometry):
        module, _ = make_module(geometry, npart=2)
        module.extract_partition(1)
        with pytest.raises(ProtocolError):
            module.extract_partition(1)


class TestCosts:
    def test_costs_accumulate_with_load(self, geometry):
        module, _ = make_module(geometry)
        light = workload_batch(0.0, 2.0, rate=50.0)
        module.enqueue(Shipment(0, 0.0, 2.0, light))
        cheap = process_all(module)

        module2, _ = make_module(geometry)
        heavy = workload_batch(0.0, 2.0, rate=1000.0)
        module2.enqueue(Shipment(0, 0.0, 2.0, heavy))
        costly = process_all(module2)
        assert costly > cheap

    def test_unit_kinds(self, geometry):
        module, _ = make_module(geometry)
        batch = workload_batch(0.0, 2.0, rate=600.0)
        module.enqueue(Shipment(0, 0.0, 2.0, batch))
        kinds = {unit.kind for unit in _run_and_collect(module)}
        assert "expire" in kinds
        assert "probe" in kinds


def _run_and_collect(module):
    units = []
    for unit in module.work_units():
        units.append(unit)
        unit.execute(10.0)
    return units
