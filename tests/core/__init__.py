"""Test package."""
