"""Extendible-hash directory: splits, merges, buddies, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exthash import ExtendibleDirectory
from repro.errors import SimulationError


class SetPayload:
    """A bucket payload that is just a set of integer hash values."""

    def __init__(self, values=()):
        self.values = set(values)

    def split(self, bit):
        mask = 1 << bit
        return (
            SetPayload(v for v in self.values if not v & mask),
            SetPayload(v for v in self.values if v & mask),
        )

    @staticmethod
    def merge(a, b):
        return SetPayload(a.values | b.values)


def split(directory, bucket):
    return directory.split(bucket, lambda p, bit: p.split(bit))


def merge(directory, bucket):
    return directory.merge(bucket, SetPayload.merge)


class TestDirectoryGrowth:
    def test_initial_state(self):
        d = ExtendibleDirectory(SetPayload())
        assert d.global_depth == 0
        assert d.n_buckets == 1
        d.check_invariants()

    def test_split_at_global_depth_doubles_directory(self):
        d = ExtendibleDirectory(SetPayload(range(8)))
        split(d, d.slots[0])
        assert d.global_depth == 1
        assert len(d.slots) == 2
        assert d.n_buckets == 2
        d.check_invariants()

    def test_split_distributes_by_bit(self):
        d = ExtendibleDirectory(SetPayload(range(8)))
        low, high = split(d, d.slots[0])
        assert low.payload.values == {0, 2, 4, 6}
        assert high.payload.values == {1, 3, 5, 7}

    def test_split_below_global_depth_keeps_size(self):
        d = ExtendibleDirectory(SetPayload(range(16)))
        split(d, d.slots[0])           # depth 0 -> 1, doubles
        split(d, d.bucket_for(0))      # depth 1 -> 2, doubles
        size = len(d.slots)
        # bucket at pattern 1 still has depth 1 < global 2: no doubling.
        split(d, d.bucket_for(1))
        assert len(d.slots) == size
        d.check_invariants()

    def test_lookup_routes_by_lsb(self):
        d = ExtendibleDirectory(SetPayload(range(16)))
        split(d, d.slots[0])
        split(d, d.bucket_for(0))
        for g in range(16):
            bucket = d.bucket_for(g)
            mask = (1 << bucket.local_depth) - 1
            assert g & mask == bucket.pattern

    def test_depth_limit_enforced(self):
        d = ExtendibleDirectory(SetPayload(range(4)), max_global_depth=1)
        split(d, d.slots[0])
        with pytest.raises(SimulationError):
            split(d, d.bucket_for(0))
        assert not d.can_split(d.bucket_for(0))


class TestBuddyMerge:
    def test_buddy_is_msb_flip_of_pattern(self):
        d = ExtendibleDirectory(SetPayload(range(8)))
        split(d, d.slots[0])
        low, high = d.bucket_for(0), d.bucket_for(1)
        assert d.buddy_of(low) is high
        assert d.buddy_of(high) is low

    def test_merge_restores_single_bucket(self):
        d = ExtendibleDirectory(SetPayload(range(8)))
        split(d, d.slots[0])
        merged = merge(d, d.bucket_for(0))
        assert merged is not None
        assert merged.payload.values == set(range(8))
        assert d.n_buckets == 1
        d.check_invariants()

    def test_no_buddy_at_depth_zero(self):
        d = ExtendibleDirectory(SetPayload())
        assert d.buddy_of(d.slots[0]) is None

    def test_unequal_depths_block_merge(self):
        d = ExtendibleDirectory(SetPayload(range(16)))
        split(d, d.slots[0])          # buckets at depth 1
        split(d, d.bucket_for(0))     # pattern 00/10 at depth 2
        # pattern 1 (depth 1) has no same-depth buddy now.
        assert d.buddy_of(d.bucket_for(1)) is None

    def test_split_then_merge_roundtrip_preserves_content(self):
        values = set(range(32))
        d = ExtendibleDirectory(SetPayload(values))
        split(d, d.slots[0])
        split(d, d.bucket_for(0))
        split(d, d.bucket_for(1))
        merge(d, d.bucket_for(0))
        merge(d, d.bucket_for(1))
        total = set()
        for bucket in d.buckets():
            total |= bucket.payload.values
        assert total == values
        d.check_invariants()


@given(
    ops=st.lists(st.integers(0, 63), min_size=1, max_size=40),
    merges=st.lists(st.integers(0, 63), max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_random_split_merge_keeps_invariants(ops, merges):
    """Arbitrary split/merge sequences preserve directory invariants
    and never lose or duplicate payload values."""
    values = set(range(64))
    d = ExtendibleDirectory(SetPayload(values), max_global_depth=6)
    for g in ops:
        bucket = d.bucket_for(g)
        if d.can_split(bucket):
            split(d, bucket)
            d.check_invariants()
    for g in merges:
        bucket = d.bucket_for(g)
        merge(d, bucket)
        d.check_invariants()
    seen: list[int] = []
    for bucket in d.buckets():
        seen.extend(bucket.payload.values)
        mask = (1 << bucket.local_depth) - 1
        for v in bucket.payload.values:
            assert v & mask == bucket.pattern
    assert sorted(seen) == sorted(values)
