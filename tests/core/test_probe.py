"""The vectorized probe kernel, cross-checked against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probe import probe_sorted
from tests.conftest import brute_force_pairs


def run_probe(probe, window_rows, window, collect_pairs=True):
    """probe/window_rows: lists of (ts, key, seq)."""
    p_ts = np.array([r[0] for r in probe], dtype=float)
    p_key = np.array([r[1] for r in probe], dtype=np.int64)
    p_seq = np.array([r[2] for r in probe], dtype=np.int64)
    w = sorted(window_rows, key=lambda r: r[1])
    w_ts = np.array([r[0] for r in w], dtype=float)
    w_key = np.array([r[1] for r in w], dtype=np.int64)
    w_seq = np.array([r[2] for r in w], dtype=np.int64)
    return probe_sorted(
        p_ts, p_key, p_seq, w_key, w_ts, w_seq, window, collect_pairs
    )


class TestProbeBasics:
    def test_simple_match(self):
        result = run_probe([(5.0, 1, 0)], [(4.0, 1, 10)], window=10.0)
        assert result.n_pairs == 1
        assert list(result.newer_ts) == [5.0]
        assert result.pairs.tolist() == [[0, 10]]

    def test_key_mismatch(self):
        result = run_probe([(5.0, 1, 0)], [(4.0, 2, 10)], window=10.0)
        assert result.n_pairs == 0

    def test_window_excludes_old_tuples(self):
        result = run_probe([(100.0, 1, 0)], [(4.0, 1, 10)], window=10.0)
        assert result.n_pairs == 0

    def test_window_boundary_inclusive(self):
        result = run_probe([(14.0, 1, 0)], [(4.0, 1, 10)], window=10.0)
        assert result.n_pairs == 1

    def test_newer_ts_picks_the_later_side(self):
        result = run_probe(
            [(5.0, 1, 0)], [(4.0, 1, 10), (6.0, 1, 11)], window=10.0
        )
        assert sorted(result.newer_ts.tolist()) == [5.0, 6.0]

    def test_empty_inputs(self):
        assert run_probe([], [(1.0, 1, 0)], 10.0).n_pairs == 0
        assert run_probe([(1.0, 1, 0)], [], 10.0).n_pairs == 0

    def test_duplicate_keys_produce_all_pairs(self):
        result = run_probe(
            [(5.0, 1, 0), (5.5, 1, 1)],
            [(4.0, 1, 10), (4.5, 1, 11)],
            window=10.0,
        )
        assert result.n_pairs == 4

    def test_collect_pairs_requires_seq(self):
        with pytest.raises(ValueError):
            probe_sorted(
                np.array([1.0]),
                np.array([1], dtype=np.int64),
                np.array([0], dtype=np.int64),
                np.array([1], dtype=np.int64),
                np.array([0.5]),
                None,
                10.0,
                collect_pairs=True,
            )


@given(
    probe=st.lists(
        st.tuples(
            st.floats(0, 100),
            st.integers(0, 8),
        ),
        max_size=30,
    ),
    window_rows=st.lists(
        st.tuples(
            st.floats(0, 100),
            st.integers(0, 8),
        ),
        max_size=60,
    ),
    window=st.floats(0.1, 150),
)
@settings(max_examples=200, deadline=None)
def test_probe_matches_brute_force(probe, window_rows, window):
    probe = [(ts, key, i) for i, (ts, key) in enumerate(probe)]
    window_rows = [
        (ts, key, 1000 + i) for i, (ts, key) in enumerate(window_rows)
    ]
    result = run_probe(probe, window_rows, window)
    expected = brute_force_pairs(
        np.array([r[0] for r in probe]),
        np.array([r[1] for r in probe]),
        np.array([r[2] for r in probe]),
        np.array([r[0] for r in window_rows]),
        np.array([r[1] for r in window_rows]),
        np.array([r[2] for r in window_rows]),
        window,
    )
    got = set(map(tuple, result.pairs.tolist())) if result.pairs is not None else set()
    assert got == expected
    assert result.n_pairs == len(expected)
