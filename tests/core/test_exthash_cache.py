"""The directory's slot->pattern cache must track structural changes."""

import numpy as np

from repro.core.exthash import ExtendibleDirectory


class SetPayload:
    def __init__(self, values=()):
        self.values = set(values)

    def split(self, bit):
        mask = 1 << bit
        return (
            SetPayload(v for v in self.values if not v & mask),
            SetPayload(v for v in self.values if v & mask),
        )

    @staticmethod
    def merge(a, b):
        return SetPayload(a.values | b.values)


def expected_table(directory):
    return np.array([b.pattern for b in directory.slots], dtype=np.int64)


class TestPatternTableCache:
    def test_initial(self):
        d = ExtendibleDirectory(SetPayload(range(8)))
        assert np.array_equal(d.pattern_table(), expected_table(d))

    def test_invalidated_by_split(self):
        d = ExtendibleDirectory(SetPayload(range(16)))
        d.pattern_table()  # warm the cache
        d.split(d.slots[0], lambda p, bit: p.split(bit))
        assert np.array_equal(d.pattern_table(), expected_table(d))
        d.split(d.bucket_for(0), lambda p, bit: p.split(bit))
        assert np.array_equal(d.pattern_table(), expected_table(d))

    def test_invalidated_by_merge(self):
        d = ExtendibleDirectory(SetPayload(range(8)))
        d.split(d.slots[0], lambda p, bit: p.split(bit))
        d.pattern_table()
        d.merge(d.bucket_for(0), SetPayload.merge)
        assert np.array_equal(d.pattern_table(), expected_table(d))

    def test_cache_is_reused_when_clean(self):
        d = ExtendibleDirectory(SetPayload(range(8)))
        first = d.pattern_table()
        second = d.pattern_table()
        assert first is second

    def test_random_structure_stays_consistent(self):
        rng = np.random.default_rng(0)
        d = ExtendibleDirectory(SetPayload(range(64)), max_global_depth=6)
        for _ in range(40):
            g = int(rng.integers(0, 64))
            bucket = d.bucket_for(g)
            if rng.random() < 0.6 and d.can_split(bucket):
                d.split(bucket, lambda p, bit: p.split(bit))
            else:
                d.merge(bucket, SetPayload.merge)
            assert np.array_equal(d.pattern_table(), expected_table(d))
            d.check_invariants()
