"""Partition and directory hashes."""

import numpy as np

from repro.core.hashing import directory_hash, directory_index, partition_of


class TestPartitionOf:
    def test_range(self):
        keys = np.arange(10_000, dtype=np.int64)
        pids = partition_of(keys, 60)
        assert pids.min() >= 0
        assert pids.max() < 60

    def test_deterministic(self):
        keys = np.arange(100, dtype=np.int64)
        assert np.array_equal(partition_of(keys, 60), partition_of(keys, 60))

    def test_roughly_uniform(self):
        keys = np.arange(60_000, dtype=np.int64)
        counts = np.bincount(partition_of(keys, 60), minlength=60)
        assert counts.min() > 800
        assert counts.max() < 1200

    def test_negative_keys_handled(self):
        pids = partition_of(np.array([-5, -1], dtype=np.int64), 60)
        assert np.all((0 <= pids) & (pids < 60))

    def test_single_partition(self):
        assert np.all(partition_of(np.arange(100), 1) == 0)


class TestDirectoryHash:
    def test_independent_of_partition_hash(self):
        """Keys in the same partition must spread over directory bits —
        fine tuning could not split a partition otherwise."""
        keys = np.arange(200_000, dtype=np.int64)
        same_part = keys[partition_of(keys, 60) == 7]
        bits = directory_index(directory_hash(same_part), 3)
        counts = np.bincount(bits, minlength=8)
        assert counts.min() > 0.8 * len(same_part) / 8

    def test_directory_index_depth_zero(self):
        idx = directory_index(directory_hash(np.arange(10)), 0)
        assert np.all(idx == 0)

    def test_directory_index_masks_lsb(self):
        g = directory_hash(np.arange(1000, dtype=np.int64))
        idx = directory_index(g, 4)
        assert idx.max() < 16
        assert np.array_equal(idx, (g & np.uint64(15)).astype(np.int64))

    def test_deterministic(self):
        keys = np.arange(50, dtype=np.int64)
        assert np.array_equal(directory_hash(keys), directory_hash(keys))
