"""Metrics: delay statistics, gating, snapshots."""

import numpy as np
import pytest

from repro.core.metrics import (
    DelayStats,
    MasterMetrics,
    MeasurementWindow,
    SlaveMetrics,
)


class TestDelayStats:
    def test_record_and_mean(self):
        stats = DelayStats()
        stats.record(np.array([1.0, 2.0, 3.0]))
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_empty_record_is_noop(self):
        stats = DelayStats()
        stats.record(np.empty(0))
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_merge(self):
        a, b = DelayStats(), DelayStats()
        a.record(np.array([1.0]))
        b.record(np.array([3.0]))
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)
        assert a.maximum == 3.0

    def test_percentile_approximation(self):
        stats = DelayStats()
        stats.record(np.full(99, 0.01))
        stats.record(np.full(1, 100.0))
        assert stats.percentile(50) == pytest.approx(0.01, rel=0.3)
        assert stats.percentile(99.9) > 50

    def test_histogram_total(self):
        stats = DelayStats()
        stats.record(np.random.default_rng(0).uniform(0.001, 500, 1000))
        assert stats.histogram.sum() == 1000

    def test_snapshot_keys(self):
        stats = DelayStats()
        stats.record(np.array([0.5]))
        snap = stats.snapshot()
        assert set(snap) == {"count", "mean", "min", "max", "p50", "p99"}


class TestMeasurementWindow:
    def test_active(self):
        gate = MeasurementWindow(10.0, 20.0)
        assert not gate.active(5.0)
        assert gate.active(10.0)
        assert gate.active(20.0)
        assert not gate.active(21.0)

    def test_overlap(self):
        gate = MeasurementWindow(10.0, 20.0)
        assert gate.overlap(0.0, 5.0) == 0.0
        assert gate.overlap(5.0, 15.0) == 5.0
        assert gate.overlap(12.0, 30.0) == 8.0
        assert gate.overlap(0.0, 30.0) == 10.0


class TestSlaveMetricsGating:
    def test_outputs_before_warmup_ignored(self):
        metrics = SlaveMetrics(1, MeasurementWindow(10.0))
        metrics.record_outputs(5.0, np.array([4.0]))
        assert metrics.delays.count == 0
        metrics.record_outputs(15.0, np.array([14.0]))
        assert metrics.delays.count == 1

    def test_cpu_charge_clipped_to_gate(self):
        metrics = SlaveMetrics(1, MeasurementWindow(10.0, 20.0))
        metrics.charge_cpu("probe", 8.0, 12.0)  # half inside
        assert metrics.cpu_probe == pytest.approx(2.0)
        metrics.charge_cpu("probe", 0.0, 5.0)  # fully outside
        assert metrics.cpu_probe == pytest.approx(2.0)

    def test_cpu_kinds_accumulate_separately(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        metrics.charge_cpu("probe", 0.0, 1.0)
        metrics.charge_cpu("expire", 1.0, 1.5)
        metrics.charge_cpu("tune", 1.5, 1.75)
        metrics.charge_cpu("state_move", 2.0, 2.5)
        assert metrics.cpu_total == pytest.approx(1.0 + 0.5 + 0.25 + 0.5)

    def test_unknown_cpu_kind_rejected(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        with pytest.raises(ValueError):
            metrics.charge_cpu("bogus", 0.0, 1.0)

    def test_comm_recording(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        metrics.record_comm(0.0, 2.0, 4096, sent=False)
        assert metrics.comm_time == pytest.approx(2.0)
        assert metrics.bytes_received == 4096
        assert metrics.messages == 1

    def test_pop_unreported_resets(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        metrics.record_outputs(1.0, np.array([0.5]))
        first = metrics.pop_unreported()
        assert first.count == 1
        assert metrics.pop_unreported().count == 0
        # Local (lifetime) stats unaffected by popping.
        assert metrics.delays.count == 1

    def test_window_sampling_tracks_max(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        metrics.sample_window(1.0, 100)
        metrics.sample_window(2.0, 500)
        metrics.sample_window(3.0, 300)
        assert metrics.max_window_bytes == 500

    def test_snapshot_contains_everything(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        snap = metrics.snapshot()
        for key in (
            "cpu_total",
            "comm_time",
            "idle_time",
            "max_window_bytes",
            "outputs",
            "splits",
            "merges",
            "delay",
        ):
            assert key in snap


class TestMasterMetrics:
    def test_buffer_sampling(self):
        metrics = MasterMetrics(MeasurementWindow(0.0))
        metrics.sample_buffer(1.0, 1000)
        metrics.sample_buffer(2.0, 400)
        assert metrics.max_buffer_bytes == 1000

    def test_comm_gated(self):
        metrics = MasterMetrics(MeasurementWindow(10.0))
        metrics.record_comm(0.0, 1.0, 64, sent=True)
        assert metrics.comm_time == 0.0
        assert metrics.messages == 0
