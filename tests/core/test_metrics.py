"""Metrics: delay statistics, gating, snapshots."""

import numpy as np
import pytest

from repro.core.metrics import (
    DelayStats,
    MasterMetrics,
    MeasurementWindow,
    SlaveMetrics,
)


class TestDelayStats:
    def test_record_and_mean(self):
        stats = DelayStats()
        stats.record(np.array([1.0, 2.0, 3.0]))
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_empty_record_is_noop(self):
        stats = DelayStats()
        stats.record(np.empty(0))
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_merge(self):
        a, b = DelayStats(), DelayStats()
        a.record(np.array([1.0]))
        b.record(np.array([3.0]))
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)
        assert a.maximum == 3.0

    def test_percentile_approximation(self):
        stats = DelayStats()
        stats.record(np.full(99, 0.01))
        stats.record(np.full(1, 100.0))
        assert stats.percentile(50) == pytest.approx(0.01, rel=0.3)
        assert stats.percentile(99.9) > 50

    def test_percentile_matches_numpy_within_bin_resolution(self):
        # The histogram has 10 log-spaced bins per decade, so each bin
        # spans a factor of 10**0.1 ≈ 1.26; interpolated percentiles
        # must land within one bin width of the exact value.
        rng = np.random.default_rng(42)
        samples = rng.lognormal(mean=0.0, sigma=1.5, size=5000)
        stats = DelayStats()
        stats.record(samples)
        for q in (10, 25, 50, 75, 90, 99):
            exact = float(np.percentile(samples, q))
            assert stats.percentile(q) == pytest.approx(exact, rel=0.3)

    def test_percentile_interpolates_within_bin(self):
        # All mass in one bin: the answer must still move with q
        # instead of snapping to the bin edge.
        stats = DelayStats()
        stats.record(np.full(100, 5.0))
        assert stats.percentile(50) == pytest.approx(5.0)

    def test_percentile_q100_returns_exact_maximum(self):
        stats = DelayStats()
        stats.record(np.array([0.2, 1.0, 7.3]))
        assert stats.percentile(100) == 7.3
        assert stats.percentile(150) == 7.3

    def test_percentile_clamped_to_observed_range(self):
        stats = DelayStats()
        stats.record(np.array([2.0, 3.0]))
        assert stats.percentile(0) >= 2.0
        assert stats.percentile(99) <= 3.0

    def test_percentile_empty(self):
        assert DelayStats().percentile(50) == 0.0
        assert DelayStats().percentile(100) == 0.0

    def test_merge_with_empty_side(self):
        filled, empty = DelayStats(), DelayStats()
        filled.record(np.array([1.0, 2.0]))
        filled.merge(empty)
        assert filled.count == 2
        assert filled.mean == pytest.approx(1.5)
        assert filled.minimum == 1.0
        assert filled.maximum == 2.0

        # Empty absorbing non-empty must adopt its extrema (the empty
        # side's minimum sentinel is +inf, maximum sentinel is 0).
        other = DelayStats()
        other.merge(filled)
        assert other.count == 2
        assert other.minimum == 1.0
        assert other.maximum == 2.0
        assert other.percentile(100) == 2.0

    def test_merge_two_empty(self):
        a, b = DelayStats(), DelayStats()
        a.merge(b)
        assert a.count == 0
        assert a.mean == 0.0
        assert a.percentile(50) == 0.0

    def test_histogram_total(self):
        stats = DelayStats()
        stats.record(np.random.default_rng(0).uniform(0.001, 500, 1000))
        assert stats.histogram.sum() == 1000

    def test_snapshot_keys(self):
        stats = DelayStats()
        stats.record(np.array([0.5]))
        snap = stats.snapshot()
        assert set(snap) == {"count", "mean", "min", "max", "p50", "p99"}


class TestMeasurementWindow:
    def test_active(self):
        gate = MeasurementWindow(10.0, 20.0)
        assert not gate.active(5.0)
        assert gate.active(10.0)
        assert gate.active(20.0)
        assert not gate.active(21.0)

    def test_overlap(self):
        gate = MeasurementWindow(10.0, 20.0)
        assert gate.overlap(0.0, 5.0) == 0.0
        assert gate.overlap(5.0, 15.0) == 5.0
        assert gate.overlap(12.0, 30.0) == 8.0
        assert gate.overlap(0.0, 30.0) == 10.0


class TestSlaveMetricsGating:
    def test_outputs_before_warmup_ignored(self):
        metrics = SlaveMetrics(1, MeasurementWindow(10.0))
        metrics.record_outputs(5.0, np.array([4.0]))
        assert metrics.delays.count == 0
        metrics.record_outputs(15.0, np.array([14.0]))
        assert metrics.delays.count == 1

    def test_cpu_charge_clipped_to_gate(self):
        metrics = SlaveMetrics(1, MeasurementWindow(10.0, 20.0))
        metrics.charge_cpu("probe", 8.0, 12.0)  # half inside
        assert metrics.cpu_probe == pytest.approx(2.0)
        metrics.charge_cpu("probe", 0.0, 5.0)  # fully outside
        assert metrics.cpu_probe == pytest.approx(2.0)

    def test_cpu_kinds_accumulate_separately(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        metrics.charge_cpu("probe", 0.0, 1.0)
        metrics.charge_cpu("expire", 1.0, 1.5)
        metrics.charge_cpu("tune", 1.5, 1.75)
        metrics.charge_cpu("state_move", 2.0, 2.5)
        assert metrics.cpu_total == pytest.approx(1.0 + 0.5 + 0.25 + 0.5)

    def test_unknown_cpu_kind_rejected(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        with pytest.raises(ValueError):
            metrics.charge_cpu("bogus", 0.0, 1.0)

    def test_comm_recording(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        metrics.record_comm(0.0, 2.0, 4096, sent=False)
        assert metrics.comm_time == pytest.approx(2.0)
        assert metrics.bytes_received == 4096
        assert metrics.messages == 1

    def test_pop_unreported_resets(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        metrics.record_outputs(1.0, np.array([0.5]))
        first = metrics.pop_unreported()
        assert first.count == 1
        assert metrics.pop_unreported().count == 0
        # Local (lifetime) stats unaffected by popping.
        assert metrics.delays.count == 1

    def test_window_sampling_tracks_max(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        metrics.sample_window(1.0, 100)
        metrics.sample_window(2.0, 500)
        metrics.sample_window(3.0, 300)
        assert metrics.max_window_bytes == 500

    def test_comm_span_straddling_gate_start(self):
        # A transfer beginning before warm-up and ending inside the
        # window counts only its inside portion; the message itself is
        # attributed to its completion time, which is inside.
        metrics = SlaveMetrics(1, MeasurementWindow(10.0, 20.0))
        metrics.record_comm(8.0, 12.0, 1000, sent=True)
        assert metrics.comm_time == pytest.approx(2.0)
        assert metrics.messages == 1
        assert metrics.bytes_sent == 1000

    def test_comm_span_straddling_gate_stop(self):
        # Completion after the window: the overlap still counts but the
        # message/bytes do not (completion time is outside).
        metrics = SlaveMetrics(1, MeasurementWindow(10.0, 20.0))
        metrics.record_comm(19.0, 21.0, 1000, sent=False)
        assert metrics.comm_time == pytest.approx(1.0)
        assert metrics.messages == 0
        assert metrics.bytes_received == 0

    def test_comm_span_fully_outside(self):
        metrics = SlaveMetrics(1, MeasurementWindow(10.0, 20.0))
        metrics.record_comm(21.0, 25.0, 1000, sent=True)
        assert metrics.comm_time == 0.0
        assert metrics.messages == 0

    def test_idle_span_straddling_gate(self):
        metrics = SlaveMetrics(1, MeasurementWindow(10.0, 20.0))
        metrics.record_idle(5.0, 15.0)
        metrics.record_idle(18.0, 30.0)
        metrics.record_idle(0.0, 9.0)
        assert metrics.idle_time == pytest.approx(5.0 + 2.0)

    def test_occupancy_samples_bounded(self):
        from repro.core.metrics import OCCUPANCY_RESERVOIR_CAPACITY

        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        n = OCCUPANCY_RESERVOIR_CAPACITY * 10
        for i in range(n):
            metrics.sample_occupancy(float(i), i / n)
        assert metrics.occupancy_samples.total == n
        assert len(metrics.occupancy_samples) <= OCCUPANCY_RESERVOIR_CAPACITY
        # Decimated but still spanning the whole run.
        times = [t for t, _ in metrics.occupancy_samples.items()]
        assert times[0] == 0.0
        assert times[-1] >= n * 0.8

    def test_snapshot_contains_everything(self):
        metrics = SlaveMetrics(1, MeasurementWindow(0.0))
        snap = metrics.snapshot()
        for key in (
            "cpu_total",
            "comm_time",
            "idle_time",
            "max_window_bytes",
            "outputs",
            "splits",
            "merges",
            "delay",
        ):
            assert key in snap


class TestMasterMetrics:
    def test_buffer_sampling(self):
        metrics = MasterMetrics(MeasurementWindow(0.0))
        metrics.sample_buffer(1.0, 1000)
        metrics.sample_buffer(2.0, 400)
        assert metrics.max_buffer_bytes == 1000

    def test_comm_gated(self):
        metrics = MasterMetrics(MeasurementWindow(10.0))
        metrics.record_comm(0.0, 1.0, 64, sent=True)
        assert metrics.comm_time == 0.0
        assert metrics.messages == 0
