"""Sub-group communication scheduling and the master-buffer bound."""

import pytest

from repro.core.subgroups import (
    SlotSchedule,
    build_schedules,
    effective_groups,
    group_of,
    groups_in_order,
    max_master_buffer_bytes,
)


class TestGrouping:
    def test_single_group(self):
        assert group_of(0, 4, 1) == 0
        assert group_of(3, 4, 1) == 0

    def test_even_split(self):
        groups = [group_of(i, 4, 2) for i in range(4)]
        assert groups == [0, 0, 1, 1]

    def test_uneven_split(self):
        groups = [group_of(i, 5, 2) for i in range(5)]
        assert groups == [0, 0, 0, 1, 1]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            group_of(4, 4, 2)

    def test_effective_groups_clamped(self):
        assert effective_groups(2, 4) == 2
        assert effective_groups(0, 4) == 1
        assert effective_groups(5, 2) == 2


class TestSchedules:
    def test_slot_offsets(self):
        schedules = build_schedules([10, 11, 12, 13], 2, dist_epoch=2.0)
        assert schedules[10].slot_offset == 0.0
        assert schedules[11].slot_offset == 0.0
        assert schedules[12].slot_offset == 1.0
        assert schedules[13].slot_offset == 1.0

    def test_groups_in_order_flattens_consistently(self):
        active = [10, 11, 12, 13, 14]
        groups = groups_in_order(active, 2)
        assert [s for g in groups for s in g] == active
        schedules = build_schedules(active, 2, 2.0)
        for g, members in enumerate(groups):
            for m in members:
                assert schedules[m].group_index == g

    def test_single_member(self):
        schedules = build_schedules([5], 4, 2.0)
        assert schedules[5] == SlotSchedule(0, 1, 2.0)


class TestBufferBound:
    def test_single_group_is_full_epoch(self):
        # ng=1: M_buf per stream = r*td/2*(1+1) = r*td.
        bound = max_master_buffer_bytes(1500.0, 2.0, 1, 64, n_streams=1)
        assert bound == pytest.approx(1500 * 2 * 64)

    def test_many_groups_halve_the_buffer(self):
        one = max_master_buffer_bytes(1500.0, 2.0, 1, 64)
        many = max_master_buffer_bytes(1500.0, 2.0, 1000, 64)
        assert many == pytest.approx(one / 2, rel=0.01)

    def test_paper_equation_shape(self):
        # M_buf = (r*td/2)(1 + 1/ng) per stream.
        for ng in (1, 2, 4, 8):
            bound = max_master_buffer_bytes(1000.0, 2.0, ng, 64, n_streams=2)
            expected = 1000 * 2.0 / 2 * (1 + 1 / ng) * 64 * 2
            assert bound == pytest.approx(expected)
