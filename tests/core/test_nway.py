"""N-way composite joins: kernel, oracle, and full-cluster exactness."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JoinSystem, SystemConfig
from repro.core.nway import (
    MAX_COMBOS_PER_TUPLE,
    naive_multiway_join,
    probe_composites,
)
from repro.data.tuples import TupleBatch
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer



def _window(rows):
    """rows: (ts, key, seq) -> key-sorted arrays."""
    rows = sorted(rows, key=lambda r: r[1])
    return (
        np.array([r[1] for r in rows], dtype=np.int64),
        np.array([r[0] for r in rows], dtype=np.float64),
        np.array([r[2] for r in rows], dtype=np.int64),
    )


class TestProbeComposites:
    def test_three_way_simple(self):
        k1, t1, s1 = _window([(1.0, 5, 100)])
        k2, t2, s2 = _window([(2.0, 5, 200)])
        result = probe_composites(
            0,
            np.array([3.0]),
            np.array([5], dtype=np.int64),
            np.array([0], dtype=np.int64),
            [(1, k1, t1, s1), (2, k2, t2, s2)],
            {0: 10.0, 1: 10.0, 2: 10.0},
            collect_members=True,
        )
        assert result.n_composites == 1
        assert result.newest_ts.tolist() == [3.0]
        assert result.members.tolist() == [[0, 100, 200]]

    def test_window_predicate_uses_per_stream_windows(self):
        # Member of stream 1 is 8 s older than the newest: valid for
        # W1=10 but not for W1=5.
        k1, t1, s1 = _window([(1.0, 5, 100)])
        k2, t2, s2 = _window([(8.0, 5, 200)])
        for w1, expected in ((10.0, 1), (5.0, 0)):
            result = probe_composites(
                0,
                np.array([9.0]),
                np.array([5], dtype=np.int64),
                np.array([0], dtype=np.int64),
                [(1, k1, t1, s1), (2, k2, t2, s2)],
                {0: 10.0, 1: w1, 2: 10.0},
            )
            assert result.n_composites == expected

    def test_newest_member_may_be_committed(self):
        # A committed member newer than the probe tuple defines t*.
        k1, t1, s1 = _window([(9.0, 5, 100)])
        k2, t2, s2 = _window([(1.0, 5, 200)])
        result = probe_composites(
            0,
            np.array([5.0]),
            np.array([5], dtype=np.int64),
            np.array([0], dtype=np.int64),
            [(1, k1, t1, s1), (2, k2, t2, s2)],
            {0: 10.0, 1: 10.0, 2: 10.0},
        )
        assert result.n_composites == 1
        assert result.newest_ts.tolist() == [9.0]

    def test_empty_other_stream_blocks_everything(self):
        k1, t1, s1 = _window([(1.0, 5, 100)])
        empty = _window([])
        result = probe_composites(
            0,
            np.array([2.0]),
            np.array([5], dtype=np.int64),
            np.array([0], dtype=np.int64),
            [(1, k1, t1, s1), (2, *empty)],
            {0: 10.0, 1: 10.0, 2: 10.0},
        )
        assert result.n_composites == 0

    def test_explosion_guard(self):
        n = 500
        hot = _window([(1.0 + i * 1e-4, 5, i) for i in range(n)])
        with pytest.raises(OverflowError, match="composite explosion"):
            probe_composites(
                0,
                np.array([2.0]),
                np.array([5], dtype=np.int64),
                np.array([0], dtype=np.int64),
                [(1, *hot), (2, *hot)],
                {0: 10.0, 1: 10.0, 2: 10.0},
            )
        assert n * n > MAX_COMBOS_PER_TUPLE


class TestNaiveMultiwayOracle:
    def test_degenerates_to_pairwise(self):
        from repro.reference import naive_window_join

        rng = np.random.default_rng(0)
        n = 60
        batch = TupleBatch.build(
            ts=np.sort(rng.uniform(0, 10, n)),
            key=rng.integers(0, 5, n),
            seq=np.concatenate(
                [np.arange((n + 1) // 2), np.arange(n // 2)]
            ),
            stream=np.arange(n) % 2,
        )
        two = naive_multiway_join(batch, [4.0, 4.0])
        ref = naive_window_join(batch, 4.0)
        assert np.array_equal(two, ref)

    def test_brute_force_three_way(self):
        batch = TupleBatch.build(
            ts=[1.0, 2.0, 3.0, 8.0],
            key=[5, 5, 5, 5],
            seq=[0, 0, 0, 1],
            stream=[0, 1, 2, 2],
        )
        rows = naive_multiway_join(batch, [10.0, 10.0, 10.0])
        assert rows.tolist() == [[0, 0, 0], [0, 0, 1]]
        # Tight windows exclude the late member of stream 2.
        rows = naive_multiway_join(batch, [10.0, 10.0, 2.0])
        # composite (0,0,1): t*=8, member2 ts=8 -> fine; member0 ts=1,
        # 8-1 <= W0=10 fine; member1 ts=2, 8-2 <= 10 fine -> stays.
        # composite (0,0,0): t*=3; all within -> stays.
        assert len(rows) == 2


@given(
    rows=st.lists(
        st.tuples(
            st.floats(0, 20),
            st.integers(0, 3),
            st.integers(0, 2),  # stream id among 3
        ),
        max_size=18,
    ),
    windows=st.tuples(
        st.floats(0.5, 25), st.floats(0.5, 25), st.floats(0.5, 25)
    ),
)
@settings(max_examples=100, deadline=None)
def test_probe_kernel_matches_oracle_three_way(rows, windows):
    """Simulate last-member-flush emission over an arbitrary arrival
    order and compare the union of probe results to the oracle."""
    per_stream_seq = {0: 0, 1: 0, 2: 0}
    tagged = []
    for ts, key, sid in sorted(rows):
        tagged.append((ts, key, sid, per_stream_seq[sid]))
        per_stream_seq[sid] += 1

    committed = {0: [], 1: [], 2: []}
    found = []
    for ts, key, sid, seq in tagged:  # arrival = flush order (1-tuple blocks)
        others = []
        for k in (0, 1, 2):
            if k == sid:
                continue
            others.append((k, *_window([(t, ky, sq) for t, ky, sq in committed[k]])))
        result = probe_composites(
            sid,
            np.array([ts]),
            np.array([key], dtype=np.int64),
            np.array([seq], dtype=np.int64),
            others,
            {0: windows[0], 1: windows[1], 2: windows[2]},
            collect_members=True,
        )
        if result.members is not None and len(result.members):
            found.extend(map(tuple, result.members.tolist()))
        committed[sid].append((ts, key, seq))

    batch = TupleBatch.build(
        ts=[r[0] for r in tagged],
        key=[r[1] for r in tagged],
        seq=[r[3] for r in tagged],
        stream=[r[2] for r in tagged],
    )
    expected = set(map(tuple, naive_multiway_join(batch, list(windows)).tolist()))
    assert set(found) == expected
    assert len(found) == len(expected)  # exactly-once


class TestClusterThreeWay:
    def test_full_cluster_three_way_exact(self):
        cfg = (
            SystemConfig.paper_defaults()
            .scaled(0.01)
            .with_(
                n_streams=3,
                npart=8,
                num_slaves=2,
                rate=60.0,
                key_domain=40,
                run_seconds=12.0,
                warmup_seconds=6.0,
                window_seconds=3.0,
                reorg_epoch=4.0,
            )
        )
        wl = TwoStreamWorkload.poisson_bmodel(
            RngRegistry(3), cfg.rate, cfg.b_skew, cfg.key_domain, n_streams=3
        )
        trace = wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)
        result = JoinSystem(
            cfg, collect_pairs=True, workload=TraceReplayer(trace)
        ).run()
        got = result.pairs
        got = got[np.lexsort(tuple(got[:, c] for c in reversed(range(3))))]
        expected = naive_multiway_join(trace, [cfg.window_seconds] * 3)
        assert len(expected) > 0
        assert np.array_equal(got, expected)

    def test_four_streams_supported(self):
        cfg = (
            SystemConfig.paper_defaults()
            .scaled(0.01)
            .with_(
                n_streams=4,
                npart=8,
                num_slaves=2,
                rate=40.0,
                key_domain=30,
                run_seconds=12.0,
                warmup_seconds=6.0,
                window_seconds=3.0,
                reorg_epoch=4.0,
            )
        )
        result = JoinSystem(cfg).run()
        assert result.outputs >= 0  # runs to completion

    def test_n_streams_validation(self):
        with pytest.raises(Exception):
            SystemConfig.paper_defaults().with_(n_streams=1)
