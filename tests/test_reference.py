"""The naive-join oracle itself, cross-checked against brute force."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.tuples import TupleBatch
from repro.reference import naive_window_join
from tests.conftest import brute_force_pairs


def build_batch(rows):
    """rows: list of (ts, key, stream)."""
    if not rows:
        return TupleBatch.empty()
    per_stream_seq = {0: 0, 1: 0}
    ts, key, seq, stream = [], [], [], []
    for t, k, s in rows:
        ts.append(t)
        key.append(k)
        stream.append(s)
        seq.append(per_stream_seq[s])
        per_stream_seq[s] += 1
    return TupleBatch.build(ts=ts, key=key, seq=seq, stream=stream)


class TestNaiveJoin:
    def test_simple(self):
        batch = build_batch([(1.0, 5, 0), (2.0, 5, 1)])
        pairs = naive_window_join(batch, 10.0)
        assert pairs.tolist() == [[0, 0]]

    def test_window_excludes(self):
        batch = build_batch([(1.0, 5, 0), (50.0, 5, 1)])
        assert len(naive_window_join(batch, 10.0)) == 0

    def test_no_same_stream_pairs(self):
        batch = build_batch([(1.0, 5, 0), (2.0, 5, 0)])
        assert len(naive_window_join(batch, 10.0)) == 0

    def test_sorted_output(self):
        batch = build_batch(
            [(1.0, 5, 0), (1.5, 5, 0), (2.0, 5, 1), (2.5, 5, 1)]
        )
        pairs = naive_window_join(batch, 10.0)
        assert pairs.tolist() == sorted(pairs.tolist())

    def test_empty_stream(self):
        batch = build_batch([(1.0, 5, 0)])
        assert len(naive_window_join(batch, 10.0)) == 0


@given(
    rows=st.lists(
        st.tuples(
            st.floats(0, 50),
            st.integers(0, 5),
            st.integers(0, 1),
        ),
        max_size=40,
    ),
    window=st.floats(0.1, 80),
)
@settings(max_examples=200, deadline=None)
def test_naive_join_matches_brute_force(rows, window):
    batch = build_batch(rows)
    pairs = naive_window_join(batch, window)
    s0, s1 = batch.by_stream(0), batch.by_stream(1)
    expected = brute_force_pairs(
        s0.ts, s0.key, s0.seq, s1.ts, s1.key, s1.seq, window
    )
    assert set(map(tuple, pairs.tolist())) == expected
    assert len(pairs) == len(expected)
