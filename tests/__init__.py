"""Test package."""
