"""The b-model key generator: bounds, skew, analytic properties."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload.bmodel import BModelKeys


def gen(b=0.7, domain=10_000_001, seed=0, levels=None):
    return BModelKeys(domain, b, np.random.default_rng(seed), levels=levels)


class TestBounds:
    def test_keys_in_domain(self):
        keys = gen().draw(10_000)
        assert keys.min() >= 0
        assert keys.max() < 10_000_001

    def test_empty_draw(self):
        assert len(gen().draw(0)) == 0

    def test_dtype(self):
        assert gen().draw(10).dtype == np.int64

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            BModelKeys(0, 0.7, rng)
        with pytest.raises(ConfigError):
            BModelKeys(10, 1.5, rng)


class TestSkew:
    def test_b_half_is_roughly_uniform(self):
        keys = gen(b=0.5).draw(50_000)
        # Mean of uniform over [0, D) is D/2; allow 2% drift.
        assert abs(keys.mean() / 10_000_001 - 0.5) < 0.02

    def test_higher_b_concentrates_mass(self):
        """With hot halves at the low end, larger b pushes mass down."""
        lo = gen(b=0.9).draw(20_000)
        hi = gen(b=0.6).draw(20_000)
        assert np.median(lo) < np.median(hi)

    def test_eighty_twenty_law(self):
        """b=0.8 puts ~80% of tuples in the hot half at every scale."""
        keys = gen(b=0.8).draw(100_000)
        hot = np.count_nonzero(keys < 10_000_001 / 2)
        assert abs(hot / 100_000 - 0.8) < 0.01

    def test_empirical_collision_mass_matches_analytic(self):
        """sum p_k^2 estimated by birthday counting ~= (b^2+(1-b)^2)^L."""
        model = gen(b=0.7, levels=12, domain=4096)
        keys = model.draw(200_000)
        _, counts = np.unique(keys, return_counts=True)
        # Unbiased estimator of collision probability.
        n = len(keys)
        est = (counts * (counts - 1)).sum() / (n * (n - 1))
        assert est == pytest.approx(model.collision_mass(), rel=0.05)


class TestAnalytics:
    def test_hottest_key_probability(self):
        model = gen(b=0.7, levels=10)
        assert model.hottest_key_probability() == pytest.approx(0.7**10)

    def test_collision_mass_formula(self):
        model = gen(b=0.7, levels=10)
        assert model.collision_mass() == pytest.approx((0.49 + 0.09) ** 10)

    def test_expected_matches_per_probe(self):
        model = gen(b=0.7, levels=10)
        assert model.expected_matches_per_probe(1000) == pytest.approx(
            1000 * model.collision_mass()
        )

    def test_uniform_levels_default_covers_domain(self):
        model = gen(domain=1 << 20)
        assert model.levels == 20
