"""Stream generators: merging, stream ids, sequence numbering."""

import numpy as np

from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload


def make_workload(rate=500.0, n_streams=2, seed=0):
    return TwoStreamWorkload.poisson_bmodel(
        RngRegistry(seed), rate, 0.7, 10_000_001, n_streams=n_streams
    )


class TestTwoStreamWorkload:
    def test_merged_batch_sorted_by_ts(self):
        batch = make_workload().generate(0.0, 10.0)
        assert np.all(np.diff(batch.ts) >= 0)

    def test_both_streams_present(self):
        batch = make_workload().generate(0.0, 10.0)
        assert set(np.unique(batch.stream)) == {0, 1}

    def test_sequences_are_per_stream_and_contiguous(self):
        wl = make_workload()
        first = wl.generate(0.0, 5.0)
        second = wl.generate(5.0, 10.0)
        for sid in (0, 1):
            seqs = np.concatenate(
                [first.by_stream(sid).seq, second.by_stream(sid).seq]
            )
            assert np.array_equal(np.sort(seqs), np.arange(len(seqs)))

    def test_tuples_generated_counter(self):
        wl = make_workload()
        batch = wl.generate(0.0, 10.0)
        assert wl.tuples_generated == len(batch)

    def test_deterministic_per_seed(self):
        a = make_workload(seed=3).generate(0.0, 5.0)
        b = make_workload(seed=3).generate(0.0, 5.0)
        assert np.array_equal(a.ts, b.ts)
        assert np.array_equal(a.key, b.key)

    def test_streams_are_independent(self):
        batch = make_workload().generate(0.0, 20.0)
        s0, s1 = batch.by_stream(0), batch.by_stream(1)
        n = min(len(s0), len(s1), 500)
        assert not np.array_equal(s0.key[:n], s1.key[:n])

    def test_three_streams_supported(self):
        batch = make_workload(n_streams=3).generate(0.0, 5.0)
        assert set(np.unique(batch.stream)) == {0, 1, 2}

    def test_needs_two_streams(self):
        import pytest

        with pytest.raises(ValueError):
            TwoStreamWorkload([])
