"""Poisson arrivals and rate profiles."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload.arrivals import PoissonArrivals, RateProfile


class TestRateProfile:
    def test_constant(self):
        p = RateProfile.constant(100.0)
        assert p.rate_at(0.0) == 100.0
        assert p.rate_at(1e9) == 100.0

    def test_step(self):
        p = RateProfile.step(10.0, before=100.0, after=500.0)
        assert p.rate_at(9.99) == 100.0
        assert p.rate_at(10.0) == 500.0

    def test_segments_split_at_breakpoints(self):
        p = RateProfile.step(10.0, 100.0, 500.0)
        assert p.segments_in(5.0, 15.0) == [
            (5.0, 10.0, 100.0),
            (10.0, 15.0, 500.0),
        ]

    def test_segments_empty_interval(self):
        assert RateProfile.constant(1.0).segments_in(5.0, 5.0) == []

    def test_mean_rate(self):
        p = RateProfile.step(10.0, 100.0, 300.0)
        assert p.mean_rate(0.0, 20.0) == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RateProfile([1.0], [100.0])  # too few rates
        with pytest.raises(ConfigError):
            RateProfile([2.0, 1.0], [1.0, 2.0, 3.0])  # unsorted
        with pytest.raises(ConfigError):
            RateProfile([], [-1.0])  # negative rate


class TestPoissonArrivals:
    def _arrivals(self, rate=1000.0, seed=0):
        rng = np.random.default_rng(seed)
        return PoissonArrivals(RateProfile.constant(rate), rng)

    def test_times_sorted_and_in_range(self):
        times = self._arrivals().times_in(3.0, 7.0)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 3.0
        assert times.max() < 7.0

    def test_count_matches_rate(self):
        """Over a long interval the count is within 5 sigma of r*T."""
        rate, span = 1000.0, 50.0
        n = len(self._arrivals(rate).times_in(0.0, span))
        mean = rate * span
        assert abs(n - mean) < 5 * np.sqrt(mean)

    def test_zero_rate_produces_nothing(self):
        times = self._arrivals(rate=0.0).times_in(0.0, 100.0)
        assert len(times) == 0

    def test_deterministic_for_seed(self):
        a = self._arrivals(seed=42).times_in(0.0, 5.0)
        b = self._arrivals(seed=42).times_in(0.0, 5.0)
        assert np.array_equal(a, b)

    def test_step_profile_changes_density(self):
        rng = np.random.default_rng(0)
        profile = RateProfile.step(50.0, 100.0, 2000.0)
        times = PoissonArrivals(profile, rng).times_in(0.0, 100.0)
        before = np.count_nonzero(times < 50.0)
        after = np.count_nonzero(times >= 50.0)
        assert after > 10 * before

    def test_interval_additivity(self):
        """Counts over adjacent intervals are independent draws, but the
        process is still statistically consistent: E[N(0,10)] ~ 10r."""
        arr = self._arrivals(rate=500.0)
        total = sum(
            len(arr.times_in(t, t + 1.0)) for t in range(10)
        )
        assert abs(total - 5000) < 5 * np.sqrt(5000)
