"""Test package."""
