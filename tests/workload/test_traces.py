"""Trace save/load and epoch-by-epoch replay."""

import numpy as np
import pytest

from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer, load_trace, save_trace


@pytest.fixture
def trace():
    wl = TwoStreamWorkload.poisson_bmodel(RngRegistry(0), 300.0, 0.7, 10_001)
    return wl.generate(0.0, 20.0)


class TestSaveLoad:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(path, trace)
        loaded = load_trace(path)
        assert np.array_equal(loaded.ts, trace.ts)
        assert np.array_equal(loaded.key, trace.key)
        assert np.array_equal(loaded.seq, trace.seq)
        assert np.array_equal(loaded.stream, trace.stream)


class TestReplayer:
    def test_epochwise_replay_covers_everything_once(self, trace):
        replayer = TraceReplayer(trace)
        total = 0
        for t in range(0, 20, 2):
            batch = replayer.generate(float(t), float(t + 2))
            assert np.all(batch.ts >= t)
            assert np.all(batch.ts < t + 2)
            total += len(batch)
        assert total == len(trace)

    def test_replay_matches_generator_boundaries(self, trace):
        """Replaying with different epoch boundaries yields the same
        tuples overall — the property that makes oracle tests possible."""
        fine = TraceReplayer(trace)
        coarse = TraceReplayer(trace)
        fine_out = [fine.generate(t / 2, (t + 1) / 2) for t in range(80)]
        coarse_out = [coarse.generate(5.0 * t, 5.0 * (t + 1)) for t in range(8)]
        a = np.concatenate([b.seq for b in fine_out if len(b)])
        b = np.concatenate([b.seq for b in coarse_out if len(b)])
        assert np.array_equal(a, b)

    def test_backwards_read_rejected(self, trace):
        replayer = TraceReplayer(trace)
        replayer.generate(0.0, 10.0)
        with pytest.raises(ValueError):
            replayer.generate(0.0, 5.0)
