"""Zipf and uniform key generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload.uniformkeys import UniformKeys
from repro.workload.zipf import ZipfKeys


class TestZipf:
    def test_bounds(self):
        keys = ZipfKeys(1000, 1.2, np.random.default_rng(0)).draw(5000)
        assert keys.min() >= 0
        assert keys.max() < 1000

    def test_skew_grows_with_exponent(self):
        flat = ZipfKeys(10**6, 0.0, np.random.default_rng(0), n_ranks=1000)
        steep = ZipfKeys(10**6, 2.0, np.random.default_rng(0), n_ranks=1000)
        assert steep.collision_mass() > 10 * flat.collision_mass()

    def test_permutation_scatters_hot_keys(self):
        """Hot ranks must not all map to small key values."""
        keys = ZipfKeys(10**6, 1.5, np.random.default_rng(0)).draw(10_000)
        values, counts = np.unique(keys, return_counts=True)
        hottest = values[np.argmax(counts)]
        assert hottest > 1000  # would be ~1 without the permutation

    def test_empirical_collision_mass(self):
        model = ZipfKeys(10**9, 1.0, np.random.default_rng(1), n_ranks=100)
        keys = model.draw(100_000)
        _, counts = np.unique(keys, return_counts=True)
        n = len(keys)
        est = (counts * (counts - 1)).sum() / (n * (n - 1))
        assert est == pytest.approx(model.collision_mass(), rel=0.05)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            ZipfKeys(0, 1.0, rng)
        with pytest.raises(ConfigError):
            ZipfKeys(10, -1.0, rng)


class TestUniform:
    def test_bounds_and_mean(self):
        keys = UniformKeys(1000, np.random.default_rng(0)).draw(50_000)
        assert keys.min() >= 0
        assert keys.max() < 1000
        assert abs(keys.mean() - 499.5) < 10

    def test_collision_mass(self):
        assert UniformKeys(1000, np.random.default_rng(0)).collision_mass() == (
            pytest.approx(1e-3)
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            UniformKeys(0, np.random.default_rng(0))
