"""PROTO002 — wire/protocol consistency fixtures.

Two layers: synthetic fixtures pinning each individual check, and
mutation tests over the *real* ``net/wire.py``/``core/protocol.py``
sources — deleting any single ``_TAGS`` entry or ``Message`` subclass
must produce a PROTO002 finding (the ISSUE's acceptance criterion).
"""

from pathlib import Path

from repro.lint import lint_sources

REPO_ROOT = Path(__file__).resolve().parents[2]
WIRE_PATH = "src/repro/net/wire.py"
PROTO_PATH = "src/repro/core/protocol.py"


def fresh(sources):
    return sorted(lint_sources(sources, only={"PROTO002"}).fresh)


def fresh_keys(sources):
    return [f.key for f in fresh(sources)]


# ---------------------------------------------------------------------------
# Synthetic fixtures
# ---------------------------------------------------------------------------

CLEAN = {
    PROTO_PATH: (
        "class Message:\n"
        "    pass\n"
        "\n"
        "class Ping(Message):\n"
        "    pass\n"
        "\n"
        "class Pong(Message):\n"
        "    pass\n"
    ),
    WIRE_PATH: (
        "WIRE_VERSION = 2\n"
        "\n"
        "def _enc_ping(w, m):\n"
        "    pass\n"
        "\n"
        "def _dec_ping(r):\n"
        "    pass\n"
        "\n"
        "def _enc_pong(w, m):\n"
        "    pass\n"
        "\n"
        "def _dec_pong(r):\n"
        "    pass\n"
        "\n"
        "_TAGS = {\n"
        "    1: (Ping, _enc_ping, _dec_ping),\n"
        "    2: (Pong, _enc_pong, _dec_pong),\n"
        "}\n"
        "\n"
        "_TAG_LEDGER = {\n"
        "    1: (\n"
        "        (1, 'Ping'),\n"
        "    ),\n"
        "    2: (\n"
        "        (2, 'Pong'),\n"
        "    ),\n"
        "}\n"
    ),
}


def mutate(wire=None, proto=None):
    sources = dict(CLEAN)
    if wire is not None:
        sources[WIRE_PATH] = wire(sources[WIRE_PATH])
    if proto is not None:
        sources[PROTO_PATH] = proto(sources[PROTO_PATH])
    return sources


class TestFixtures:
    def test_clean_fixture_has_no_findings(self):
        assert fresh_keys(CLEAN) == []

    def test_silent_when_wire_or_protocol_is_absent(self):
        assert fresh_keys({PROTO_PATH: CLEAN[PROTO_PATH]}) == []
        assert fresh_keys({WIRE_PATH: CLEAN[WIRE_PATH]}) == []

    def test_message_without_a_tag_is_flagged_at_its_class(self):
        sources = mutate(
            proto=lambda s: s + "\nclass Nack(Message):\n    pass\n"
        )
        findings = fresh(sources)
        assert [f.key for f in findings] == [f"PROTO002 {PROTO_PATH}:10"]
        assert "`Nack` has no wire tag/encoder/decoder" in findings[0].message

    def test_deleting_a_tags_entry_is_flagged_twice(self):
        sources = mutate(
            wire=lambda s: s.replace("    2: (Pong, _enc_pong, _dec_pong),\n", "")
        )
        findings = fresh(sources)
        messages = "\n".join(f.message for f in findings)
        # Coverage: Pong lost its codec.  Ledger: tag 2 vanished.
        assert "`Pong` has no wire tag/encoder/decoder" in messages
        assert "ledger tag 2 (Pong) is missing from `_TAGS`" in messages

    def test_duplicate_tag_is_flagged(self):
        sources = mutate(
            wire=lambda s: s.replace(
                "    2: (Pong, _enc_pong, _dec_pong),\n",
                "    1: (Pong, _enc_pong, _dec_pong),\n",
            )
        )
        messages = "\n".join(f.message for f in fresh(sources))
        assert "duplicate wire tag 1" in messages

    def test_unknown_type_and_undefined_codec_are_flagged(self):
        sources = mutate(
            wire=lambda s: s.replace(
                "    2: (Pong, _enc_pong, _dec_pong),\n",
                "    2: (Gone, _enc_gone, _dec_pong),\n",
            )
        )
        messages = "\n".join(f.message for f in fresh(sources))
        assert "references `Gone`, which is not a Message subclass" in messages
        assert "names encoder `_enc_gone`, which is not defined" in messages

    def test_new_tag_without_a_ledger_entry_is_flagged(self):
        sources = mutate(
            wire=lambda s: s.replace(
                "    2: (Pong, _enc_pong, _dec_pong),\n",
                "    2: (Pong, _enc_pong, _dec_pong),\n"
                "    3: (Pong, _enc_pong, _dec_pong),\n",
            )
        )
        messages = "\n".join(f.message for f in fresh(sources))
        assert (
            "tag 3 (Pong) is not in `_TAG_LEDGER`" in messages
        ), messages
        assert "WIRE_VERSION bumped" in messages

    def test_missing_ledger_is_flagged(self):
        sources = mutate(
            wire=lambda s: s[: s.index("_TAG_LEDGER")]
        )
        messages = "\n".join(f.message for f in fresh(sources))
        assert "no `_TAG_LEDGER` found" in messages

    def test_retyped_tag_is_flagged(self):
        sources = mutate(
            wire=lambda s: s.replace("(2, 'Pong')", "(2, 'Ping')")
        )
        messages = "\n".join(f.message for f in fresh(sources))
        assert "tags must never be reassigned" in messages

    def test_version_must_match_the_ledger_head(self):
        sources = mutate(
            wire=lambda s: s.replace("WIRE_VERSION = 2", "WIRE_VERSION = 1")
        )
        messages = "\n".join(f.message for f in fresh(sources))
        assert "WIRE_VERSION is 1" in messages
        assert "newest entry is version 2" in messages

    def test_tag_below_the_high_water_mark_is_flagged(self):
        sources = mutate(
            wire=lambda s: s.replace("(2, 'Pong')", "(0, 'Pong')").replace(
                "    2: (Pong, _enc_pong, _dec_pong),\n",
                "    0: (Pong, _enc_pong, _dec_pong),\n",
            )
        )
        messages = "\n".join(f.message for f in fresh(sources))
        assert "below an earlier version's high-water mark" in messages

    def test_non_literal_tag_key_is_flagged(self):
        sources = mutate(
            wire=lambda s: "NEXT = 2\n"
            + s.replace(
                "    2: (Pong, _enc_pong, _dec_pong),\n",
                "    NEXT: (Pong, _enc_pong, _dec_pong),\n",
            )
        )
        messages = "\n".join(f.message for f in fresh(sources))
        assert "not a literal int" in messages


# ---------------------------------------------------------------------------
# Mutations of the real sources (acceptance criterion)
# ---------------------------------------------------------------------------


def real_sources():
    return {
        WIRE_PATH: (REPO_ROOT / WIRE_PATH).read_text(),
        PROTO_PATH: (REPO_ROOT / PROTO_PATH).read_text(),
    }


class TestRealWireSurface:
    def test_the_real_codec_is_consistent(self):
        assert fresh_keys(real_sources()) == []

    def test_deleting_any_single_tags_entry_is_caught(self):
        base = real_sources()
        wire_lines = base[WIRE_PATH].splitlines(keepends=True)
        tag_lines = [
            i
            for i, line in enumerate(wire_lines)
            if line.lstrip()[:1].isdigit() and ": (" in line and "_enc_" in line
        ]
        assert len(tag_lines) >= 12  # the seed protocol has 12 messages
        for i in tag_lines:
            mutated = dict(base)
            mutated[WIRE_PATH] = "".join(
                line for j, line in enumerate(wire_lines) if j != i
            )
            assert fresh_keys(mutated), (
                f"deleting _TAGS line {i + 1} went unnoticed: "
                f"{wire_lines[i].strip()}"
            )

    def test_deleting_any_single_message_subclass_is_caught(self):
        base = real_sources()
        proto = base[PROTO_PATH]
        import ast

        tree = ast.parse(proto)
        message_classes = [
            node.name
            for node in tree.body
            if isinstance(node, ast.ClassDef)
            and any(
                isinstance(b, ast.Name) and b.id == "Message"
                for b in node.bases
            )
        ]
        assert len(message_classes) >= 12
        for name in message_classes:
            mutated = dict(base)
            mutated[PROTO_PATH] = proto.replace(
                f"class {name}(Message)", f"class {name}X(Message)"
            )
            keys = fresh_keys(mutated)
            assert keys, f"renaming message {name} went unnoticed"
