"""Result cache: keying, hit/miss behavior, corruption tolerance."""

import json

from repro.lint import Finding, ResultCache, lint_sources
from repro.lint.cache import ANALYSIS_REVISION
from repro.lint.registry import RULES

BAD = "import time\nnow = time.time()\n"
PATH = "src/repro/core/x.py"


class TestKeying:
    def test_key_is_deterministic(self):
        sources = {PATH: BAD}
        assert ResultCache.key_for(sources, RULES, None) == ResultCache.key_for(
            sources, RULES, None
        )

    def test_key_depends_on_content(self):
        a = ResultCache.key_for({PATH: BAD}, RULES, None)
        b = ResultCache.key_for({PATH: BAD + "\n"}, RULES, None)
        assert a != b

    def test_key_depends_on_path_set(self):
        a = ResultCache.key_for({PATH: BAD}, RULES, None)
        b = ResultCache.key_for({"src/repro/core/y.py": BAD}, RULES, None)
        assert a != b

    def test_key_depends_on_selection(self):
        a = ResultCache.key_for({PATH: BAD}, RULES, None)
        b = ResultCache.key_for({PATH: BAD}, RULES, {"SIM001"})
        assert a != b

    def test_key_depends_on_the_revision_salt(self):
        # Not a live mutation test (the constant is baked into key_for);
        # just pin that the revision participates in the digest text.
        assert ANALYSIS_REVISION >= 1


class TestRoundtrip:
    def test_store_then_lookup(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache.json"))
        finding = Finding(
            path=PATH,
            line=2,
            rule="SIM004",
            message="m",
            chain=("a (x.py:1)", "time.time"),
        )
        cache.store("k1", [finding], suppressed=3, n_files=7)
        loaded = cache.lookup("k1")
        assert loaded is not None
        findings, suppressed, n_files = loaded
        assert findings == [finding]
        assert findings[0].chain == ("a (x.py:1)", "time.time")
        assert (suppressed, n_files) == (3, 7)

    def test_wrong_key_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache.json"))
        cache.store("k1", [], suppressed=0, n_files=1)
        assert cache.lookup("other") is None

    def test_missing_file_is_a_miss(self, tmp_path):
        assert ResultCache(str(tmp_path / "absent.json")).lookup("k") is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        assert ResultCache(str(path)).lookup("k") is None
        path.write_text(json.dumps({"key": "k"}))  # fields missing
        assert ResultCache(str(path)).lookup("k") is None


class TestEngineIntegration:
    def test_second_run_hits_the_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache.json"))
        sources = {PATH: BAD}
        first = lint_sources(sources, only={"SIM001"}, cache=cache)
        assert [f.line for f in first.fresh] == [2]
        # Poison the stored message to prove the second run loads it.
        payload = json.loads((tmp_path / "cache.json").read_text())
        payload["findings"][0]["message"] = "FROM-THE-CACHE"
        (tmp_path / "cache.json").write_text(json.dumps(payload))
        second = lint_sources(sources, only={"SIM001"}, cache=cache)
        assert [f.message for f in second.fresh] == ["FROM-THE-CACHE"]

    def test_changed_source_misses_the_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache.json"))
        lint_sources({PATH: BAD}, only={"SIM001"}, cache=cache)
        clean = "def f(rt):\n    return rt.now()\n"
        result = lint_sources({PATH: clean}, only={"SIM001"}, cache=cache)
        assert result.fresh == []

    def test_pragma_suppression_is_cached_with_the_content(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache.json"))
        src = "import time\nnow = time.time()  # lint: disable=SIM001\n"
        first = lint_sources({PATH: src}, only={"SIM001"}, cache=cache)
        second = lint_sources({PATH: src}, only={"SIM001"}, cache=cache)
        assert first.suppressed == second.suppressed == 1
        assert second.fresh == []


class TestFindingRecords:
    def test_to_record_includes_the_chain(self):
        finding = Finding(
            path=PATH, line=2, rule="SIM004", message="m", chain=("a", "b")
        )
        record = finding.to_record()
        assert record["chain"] == ["a", "b"]
        assert Finding.from_record(record) == finding

    def test_from_record_tolerates_a_missing_chain(self):
        record = {"rule": "SIM001", "path": PATH, "line": 2, "message": "m"}
        assert Finding.from_record(record).chain == ()
