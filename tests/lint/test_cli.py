"""The ``swjoin lint`` subcommand and the standalone lint entry point."""

import json

import pytest

from repro.cli import main as swjoin_main
from repro.lint.cli import main as lint_main

BAD = "import time\nnow = time.time()\n"
CLEAN = "def f(rt):\n    return rt.now()\n"


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "core_x.py"
    path.write_text(BAD)
    return path


class TestExitCodes:
    def test_findings_exit_1(self, bad_file, capsys):
        assert swjoin_main(["lint", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out
        assert f"{bad_file}:2" in out

    def test_clean_exit_0(self, tmp_path, capsys):
        path = tmp_path / "core_x.py"
        path.write_text(CLEAN)
        assert swjoin_main(["lint", str(path)]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_malformed_baseline_exit_2(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("not an entry\n")
        code = swjoin_main(
            ["lint", str(bad_file), "--baseline", str(baseline)]
        )
        assert code == 2
        assert "malformed" in capsys.readouterr().err

    def test_stale_baseline_exit_1(self, tmp_path, capsys):
        path = tmp_path / "core_x.py"
        path.write_text(CLEAN)
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(f"SIM001 {path}:2  # TODO(repro#1): fixed now\n")
        code = swjoin_main(["lint", str(path), "--baseline", str(baseline)])
        assert code == 1
        assert "stale" in capsys.readouterr().out


class TestBaselineWorkflow:
    def test_write_then_pass_then_shrink(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        # Accept the current findings (the file need not exist yet).
        code = swjoin_main(
            ["lint", str(bad_file), "--baseline", str(baseline), "--write-baseline"]
        )
        assert code == 0
        assert "TODO" in baseline.read_text()
        # Baselined findings no longer fail the run.
        assert swjoin_main(["lint", str(bad_file), "--baseline", str(baseline)]) == 0
        # Fixing the violation makes the entry stale: the baseline must shrink.
        bad_file.write_text(CLEAN)
        assert swjoin_main(["lint", str(bad_file), "--baseline", str(baseline)]) == 1
        assert "stale" in capsys.readouterr().out

    def test_no_baseline_reports_everything(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        swjoin_main(
            ["lint", str(bad_file), "--baseline", str(baseline), "--write-baseline"]
        )
        capsys.readouterr()
        assert (
            swjoin_main(["lint", str(bad_file), "--baseline", str(baseline)]) == 0
        )
        assert (
            swjoin_main(["lint", str(bad_file), "--no-baseline"]) == 1
        )


class TestOutput:
    def test_json_format(self, bad_file, capsys):
        code = swjoin_main(["lint", str(bad_file), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["n_files"] == 1
        assert [f["rule"] for f in payload["fresh"]] == ["SIM001"]
        assert payload["fresh"][0]["line"] == 2

    def test_list_rules(self, capsys):
        assert swjoin_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "SIM001",
            "SIM002",
            "SIM003",
            "SIM004",
            "SIM005",
            "OBS001",
            "OBS002",
            "PERF001",
            "PROTO001",
            "PROTO002",
            "CFG001",
        ):
            assert rule_id in out

    def test_json_findings_carry_the_chain_field(self, tmp_path, capsys):
        root = tmp_path / "src" / "repro"
        (root / "util").mkdir(parents=True)
        (root / "core").mkdir()
        (root / "util" / "helper.py").write_text(
            "import time\ndef now():\n    return time.time()\n"
        )
        (root / "core" / "thing.py").write_text(
            "from repro.util.helper import now\ndef tick():\n    return now()\n"
        )
        code = swjoin_main(
            ["lint", str(root), "--select", "SIM004", "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        (finding,) = payload["fresh"]
        assert finding["rule"] == "SIM004"
        assert finding["chain"][-1] == "time.time"
        assert len(finding["chain"]) == 3

    def test_select_restricts_rules(self, tmp_path, capsys):
        path = tmp_path / "core_x.py"
        path.write_text("import random\nimport time\nx = time.time()\n")
        assert swjoin_main(["lint", str(path), "--select", "SIM002"]) == 1
        out = capsys.readouterr().out
        assert "SIM002" in out
        assert "SIM001" not in out


@pytest.fixture
def taint_tree(tmp_path):
    """A tiny project with one SIM004 chain, rooted at tmp_path."""
    root = tmp_path / "src" / "repro"
    (root / "util").mkdir(parents=True)
    (root / "core").mkdir()
    (root / "util" / "helper.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n"
    )
    (root / "core" / "thing.py").write_text(
        "from repro.util.helper import now\n\n\ndef tick():\n    return now()\n"
    )
    return root


class TestExplain:
    def test_prints_the_finding_and_its_chain(self, taint_tree, capsys):
        anchor = f"{taint_tree}/core/thing.py:5"
        code = swjoin_main(
            ["lint", "--explain", "SIM004", anchor, str(taint_tree)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SIM004" in out
        assert "repro.core.thing.tick" in out
        assert "-> repro.util.helper.now" in out
        assert "-> time.time" in out

    def test_repo_relative_anchor_matches(self, taint_tree, capsys, monkeypatch):
        monkeypatch.chdir(taint_tree.parents[1])
        code = swjoin_main(
            [
                "lint",
                "--explain",
                "SIM004",
                "src/repro/core/thing.py:5",
                "src/repro",
            ]
        )
        assert code == 0
        assert "time.time" in capsys.readouterr().out

    def test_no_match_exits_1(self, taint_tree, capsys):
        anchor = f"{taint_tree}/core/thing.py:99"
        code = swjoin_main(
            ["lint", "--explain", "SIM004", anchor, str(taint_tree)]
        )
        assert code == 1
        assert "no SIM004 finding" in capsys.readouterr().err

    def test_unknown_rule_exits_2(self, taint_tree, capsys):
        code = swjoin_main(
            ["lint", "--explain", "NOPE", "x.py:1", str(taint_tree)]
        )
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_malformed_anchor_exits_2(self, taint_tree, capsys):
        code = swjoin_main(
            ["lint", "--explain", "SIM004", "thing.py", str(taint_tree)]
        )
        assert code == 2
        assert "FILE:LINE" in capsys.readouterr().err


class TestCacheFlag:
    def test_cache_file_is_created_and_reused(self, bad_file, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        args = ["lint", str(bad_file), "--cache", str(cache), "--no-baseline"]
        assert swjoin_main(args) == 1
        assert cache.exists()
        first = capsys.readouterr().out
        assert swjoin_main(args) == 1
        assert capsys.readouterr().out == first

    def test_corrupt_cache_is_ignored(self, bad_file, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        cache.write_text("garbage")
        args = ["lint", str(bad_file), "--cache", str(cache), "--no-baseline"]
        assert swjoin_main(args) == 1
        assert "SIM001" in capsys.readouterr().out


class TestStandaloneEntry:
    def test_module_entry_prepends_lint(self, bad_file, capsys):
        assert lint_main([str(bad_file)]) == 1
        assert "SIM001" in capsys.readouterr().out

    def test_module_entry_accepts_explicit_lint(self, capsys):
        assert lint_main(["lint", "--list-rules"]) == 0
