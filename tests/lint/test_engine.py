"""Engine mechanics: pragmas, baseline lifecycle, parse errors, selection."""

import pytest

from repro.errors import LintError
from repro.lint import Baseline, Finding, collect_files, lint_paths, lint_sources
from repro.lint.engine import PARSE_RULE

BAD = "import time\nnow = time.time()\n"
PATH = "src/repro/core/x.py"


class TestPragmas:
    def test_disable_suppresses_and_counts(self):
        src = "import time\nnow = time.time()  # lint: disable=SIM001\n"
        result = lint_sources({PATH: src}, only={"SIM001"})
        assert result.fresh == []
        assert result.suppressed == 1
        assert result.ok

    def test_disable_is_rule_scoped(self):
        src = "import time\nnow = time.time()  # lint: disable=SIM002\n"
        result = lint_sources({PATH: src}, only={"SIM001"})
        assert [f.rule for f in result.fresh] == ["SIM001"]

    def test_disable_accepts_a_rule_list(self):
        src = (
            "import time\n"
            "def f(ts):\n"
            "    return ts == time.time()  # lint: disable=SIM001,SIM003\n"
        )
        result = lint_sources({PATH: src}, only={"SIM001", "SIM003"})
        assert result.fresh == []
        assert result.suppressed == 2

    def test_disable_is_line_scoped(self):
        src = (
            "import time\n"
            "a = time.time()  # lint: disable=SIM001\n"
            "b = time.time()\n"
        )
        result = lint_sources({PATH: src}, only={"SIM001"})
        assert [f.line for f in result.fresh] == [3]


class TestBaseline:
    def test_covered_finding_is_not_fresh(self):
        baseline = Baseline.parse(f"SIM001 {PATH}:2  # TODO(repro#1): legacy\n")
        result = lint_sources({PATH: BAD}, baseline=baseline, only={"SIM001"})
        assert result.fresh == []
        assert [f.line for f in result.baselined] == [2]
        assert result.ok

    def test_stale_entry_fails_the_run(self):
        baseline = Baseline.parse(f"SIM001 {PATH}:99  # TODO(repro#1): gone\n")
        clean = "def f(rt):\n    return rt.now()\n"
        result = lint_sources({PATH: clean}, baseline=baseline, only={"SIM001"})
        assert result.fresh == []
        assert [e.line for e in result.stale_baseline] == [99]
        assert not result.ok

    def test_comments_and_blank_lines_are_ignored(self):
        baseline = Baseline.parse("# header\n\nSIM001 a.py:1  # tracked\n")
        assert len(baseline) == 1

    def test_malformed_entry_raises(self):
        with pytest.raises(LintError, match="malformed"):
            Baseline.parse("this is not an entry\n")

    def test_commentless_entry_raises(self):
        with pytest.raises(LintError, match="tracking"):
            Baseline.parse("SIM001 a.py:1\n")

    def test_render_roundtrips(self):
        finding = Finding(path=PATH, line=2, rule="SIM001", message="m")
        baseline = Baseline.parse(Baseline.render([finding]))
        assert baseline.covers(finding)


class TestEngine:
    def test_syntax_error_becomes_a_parse_finding(self):
        result = lint_sources({PATH: "def broken(:\n"})
        assert [f.rule for f in result.fresh] == [PARSE_RULE]
        assert not result.ok

    def test_only_restricts_the_rule_set(self):
        src = "import random\nimport time\nx = time.time()\n"
        result = lint_sources({PATH: src}, only={"SIM002"})
        assert {f.rule for f in result.fresh} == {"SIM002"}

    def test_findings_are_sorted_and_deduplicated(self):
        result = lint_sources({PATH: BAD, "src/repro/core/a.py": BAD})
        paths = [f.path for f in result.fresh]
        assert paths == sorted(paths)
        assert len(set(result.fresh)) == len(result.fresh)

    def test_finding_render_format(self):
        finding = Finding(path="a.py", line=3, rule="SIM001", message="boom")
        assert finding.render() == "a.py:3: SIM001 boom"
        assert finding.key == "SIM001 a.py:3"


class TestCollectFiles:
    def test_walks_dirs_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-312.pyc").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("")
        (tmp_path / "top.py").write_text("y = 2\n")
        files = collect_files([str(tmp_path)])
        names = [f.rsplit("/", 1)[-1] for f in files]
        assert names == ["top.py", "a.py"] or sorted(names) == ["a.py", "top.py"]
        assert all("__pycache__" not in f for f in files)
        assert all(f.endswith(".py") for f in files)

    def test_lint_paths_reads_from_disk(self, tmp_path):
        target = tmp_path / "core_x.py"
        target.write_text(BAD)
        result = lint_paths([str(target)], only={"SIM001"})
        assert [f.line for f in result.fresh] == [2]
        assert result.n_files == 1
