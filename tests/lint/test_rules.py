"""Fixture corpus for the built-in rules.

Each rule gets at least one known-bad snippet with asserted rule ids
*and line numbers*, plus a clean/allowlisted counterpart so we notice
both missed violations and false positives.
"""

from repro.lint import lint_sources


def fresh_keys(sources, only):
    """``["RULE path:line", ...]`` of fresh findings, sorted."""
    return sorted(f.key for f in lint_sources(sources, only=only).fresh)


# ---------------------------------------------------------------------------
# SIM001 — no wall-clock reads
# ---------------------------------------------------------------------------

WALL_CLOCK_BAD = """\
import time
from time import perf_counter
import datetime

def tick():
    a = time.time()
    b = perf_counter()
    c = datetime.datetime.now()
    time.sleep(0.1)
    return a, b, c
"""


class TestSIM001:
    def test_flags_every_read_with_line_numbers(self):
        keys = fresh_keys(
            {"src/repro/core/x.py": WALL_CLOCK_BAD}, only={"SIM001"}
        )
        assert keys == [
            "SIM001 src/repro/core/x.py:6",
            "SIM001 src/repro/core/x.py:7",
            "SIM001 src/repro/core/x.py:8",
            "SIM001 src/repro/core/x.py:9",
        ]

    def test_allowlisted_files_may_touch_the_clock(self):
        for path in (
            "src/repro/runtime/thread.py",
            "src/repro/net/thread_transport.py",
            "src/repro/cli.py",
        ):
            assert fresh_keys({path: WALL_CLOCK_BAD}, only={"SIM001"}) == []

    def test_faults_package_is_in_scope(self):
        """The fault plane runs on simulated time like everything else:
        no wall-clock exemption for repro.faults."""
        keys = fresh_keys(
            {"src/repro/faults/x.py": WALL_CLOCK_BAD}, only={"SIM001"}
        )
        assert keys == [
            "SIM001 src/repro/faults/x.py:6",
            "SIM001 src/repro/faults/x.py:7",
            "SIM001 src/repro/faults/x.py:8",
            "SIM001 src/repro/faults/x.py:9",
        ]

    def test_simulated_now_is_fine(self):
        clean = "def step(rt):\n    return rt.now() + 1.0\n"
        assert fresh_keys({"src/repro/core/x.py": clean}, only={"SIM001"}) == []

    def test_import_alias_is_resolved(self):
        bad = "import time as walltime\nt0 = walltime.monotonic()\n"
        assert fresh_keys({"src/repro/core/x.py": bad}, only={"SIM001"}) == [
            "SIM001 src/repro/core/x.py:2"
        ]


# ---------------------------------------------------------------------------
# SIM002 — randomness through the registry only
# ---------------------------------------------------------------------------

RANDOM_BAD = """\
import random
import numpy as np

def jitter():
    rng = np.random.default_rng(7)
    return random.random() + rng.normal()
"""


class TestSIM002:
    def test_flags_stdlib_and_numpy_module_state(self):
        keys = fresh_keys({"src/repro/core/x.py": RANDOM_BAD}, only={"SIM002"})
        assert keys == [
            "SIM002 src/repro/core/x.py:1",
            "SIM002 src/repro/core/x.py:5",
            "SIM002 src/repro/core/x.py:6",
        ]

    def test_rng_module_is_exempt(self):
        assert fresh_keys({"src/repro/simul/rng.py": RANDOM_BAD}, only={"SIM002"}) == []

    def test_generator_annotations_are_fine(self):
        clean = (
            "import numpy as np\n"
            "def draw(rng: np.random.Generator) -> float:\n"
            "    return float(rng.normal())\n"
        )
        assert fresh_keys({"src/repro/core/x.py": clean}, only={"SIM002"}) == []

    def test_from_random_import(self):
        bad = "from random import gauss\nx = gauss(0, 1)\n"
        assert fresh_keys({"src/repro/core/x.py": bad}, only={"SIM002"}) == [
            "SIM002 src/repro/core/x.py:1",
            "SIM002 src/repro/core/x.py:2",
        ]


# ---------------------------------------------------------------------------
# SIM003 — no float equality on simulated timestamps
# ---------------------------------------------------------------------------

TS_EQ_BAD = """\
def check(ts, epoch_end, rt):
    if ts == epoch_end:
        return True
    if rt.now() != epoch_end:
        return False
    return ts <= epoch_end
"""


class TestSIM003:
    def test_flags_eq_and_ne(self):
        keys = fresh_keys({"src/repro/core/x.py": TS_EQ_BAD}, only={"SIM003"})
        assert keys == [
            "SIM003 src/repro/core/x.py:2",
            "SIM003 src/repro/core/x.py:4",
        ]

    def test_ordering_and_none_checks_are_fine(self):
        clean = (
            "def check(ts, cutoff_ts):\n"
            "    if ts is None or cutoff_ts == None:\n"
            "        return False\n"
            "    return ts < cutoff_ts\n"
        )
        assert fresh_keys({"src/repro/core/x.py": clean}, only={"SIM003"}) == []

    def test_non_timestamp_equality_is_fine(self):
        clean = "def pick(kind):\n    return kind == 'hash'\n"
        assert fresh_keys({"src/repro/core/x.py": clean}, only={"SIM003"}) == []


# ---------------------------------------------------------------------------
# OBS001 — guarded trace-event construction
# ---------------------------------------------------------------------------

TRACER_MIXED = """\
class Node:
    def __init__(self, tracer):
        self.tracer = tracer

    def guarded(self, ev):
        if self.tracer.enabled:
            self.tracer.emit(ev())

    def bailout(self, ev):
        if not self.tracer.enabled:
            return
        self.tracer.emit(ev())

    def conjunction(self, ev, verbose):
        if verbose and self.tracer.enabled:
            self.tracer.emit(ev())

    def bad(self, ev):
        self.tracer.emit(ev())
"""


class TestOBS001:
    def test_only_the_unguarded_emit_is_flagged(self):
        keys = fresh_keys({"src/repro/core/x.py": TRACER_MIXED}, only={"OBS001"})
        assert keys == ["OBS001 src/repro/core/x.py:19"]

    def test_obs_package_is_exempt(self):
        assert (
            fresh_keys({"src/repro/obs/tracer.py": TRACER_MIXED}, only={"OBS001"})
            == []
        )

    def test_else_branch_is_not_guarded(self):
        bad = (
            "def f(tracer, ev):\n"
            "    if tracer.enabled:\n"
            "        pass\n"
            "    else:\n"
            "        tracer.emit(ev())\n"
        )
        assert fresh_keys({"src/repro/core/x.py": bad}, only={"OBS001"}) == [
            "OBS001 src/repro/core/x.py:5"
        ]


# ---------------------------------------------------------------------------
# OBS002 — metric instrument updates behind registry.enabled
# ---------------------------------------------------------------------------

METRICS_MIXED = """\
class Slave:
    def __init__(self, registry):
        self.registry = registry
        self.m_outputs = registry.counter("outputs")
        self.m_occ = registry.gauge("occupancy")
        self.m_delay = registry.histogram("delay")

    def good_block_guard(self, n, occ, delays):
        if self.registry.enabled:
            self.m_outputs.inc(n)
            self.m_occ.set(occ)
            self.m_delay.observe_many(delays.tolist())

    def good_early_bailout(self, n):
        if not self.registry.enabled:
            return
        self.m_outputs.inc(n)

    def bad_unguarded(self, n, occ):
        self.m_outputs.inc(n)
        self.m_occ.add(occ)

    def bad_else_branch(self, v):
        if self.registry.enabled:
            pass
        else:
            self.m_delay.observe(v)
"""


class TestOBS002:
    def test_only_unguarded_updates_are_flagged(self):
        keys = fresh_keys(
            {"src/repro/core/x.py": METRICS_MIXED}, only={"OBS002"}
        )
        assert keys == [
            "OBS002 src/repro/core/x.py:20",
            "OBS002 src/repro/core/x.py:21",
            "OBS002 src/repro/core/x.py:27",
        ]

    def test_obs_package_is_exempt(self):
        assert (
            fresh_keys(
                {"src/repro/obs/metrics.py": METRICS_MIXED}, only={"OBS002"}
            )
            == []
        )

    def test_non_instrument_receivers_are_ignored(self):
        """set()/add() on ordinary objects (no m_ prefix) are not
        metric updates."""
        clean = (
            "def f(seen, cache, registry):\n"
            "    seen.add(1)\n"
            "    cache.set('k')\n"
            "    registry.counter('x')\n"
        )
        assert (
            fresh_keys({"src/repro/core/x.py": clean}, only={"OBS002"}) == []
        )

    def test_any_registry_suffix_guard_counts(self):
        clean = (
            "def f(self):\n"
            "    if self.metrics.registry.enabled:\n"
            "        self.m_epochs.inc()\n"
        )
        assert (
            fresh_keys({"src/repro/core/x.py": clean}, only={"OBS002"}) == []
        )


# ---------------------------------------------------------------------------
# PROTO001 — protocol exhaustiveness (a project rule: needs several files)
# ---------------------------------------------------------------------------

PROTO_SOURCES = {
    "src/repro/core/protocol.py": (
        "class Message:\n"
        "    pass\n"
        "\n"
        "class Ping(Message):\n"
        "    pass\n"
        "\n"
        "class Pong(Message):\n"
        "    pass\n"
        "\n"
        "class Orphan(Message):\n"
        "    pass\n"
    ),
    "src/repro/core/master.py": (
        "from repro.core.protocol import Ping, Pong, Gone\n"
        "\n"
        "def loop(comm, peer):\n"
        "    comm.send(peer, Ping(payload=1))\n"
        "    msg = comm.recv_expect(peer, Pong)\n"
        "    if isinstance(msg, Gone):\n"
        "        return None\n"
        "    return msg\n"
    ),
    "src/repro/core/slave.py": (
        "from repro.core.protocol import Ping, Pong\n"
        "\n"
        "def loop(comm, peer):\n"
        "    msg = comm.recv_expect(peer, Ping)\n"
        "    comm.send(peer, Pong(ack=msg))\n"
    ),
}


class TestPROTO001:
    def test_unknown_dispatch_and_dead_message(self):
        keys = fresh_keys(PROTO_SOURCES, only={"PROTO001"})
        assert keys == [
            # `Gone` is dispatched but is not a protocol message.
            "PROTO001 src/repro/core/master.py:6",
            # `Orphan` (def line 10) is never constructed anywhere.
            "PROTO001 src/repro/core/protocol.py:10",
        ]

    def test_sent_but_undispatched(self):
        sources = dict(PROTO_SOURCES)
        # Drop the slave: Ping is still sent by the master but now nothing
        # dispatches it, and Pong is no longer constructed.
        del sources["src/repro/core/slave.py"]
        sources["src/repro/core/master.py"] = (
            "from repro.core.protocol import Ping, Orphan\n"
            "\n"
            "def loop(comm, peer):\n"
            "    comm.send(peer, Ping(payload=1))\n"
            "    comm.send(peer, Orphan())\n"
        )
        keys = fresh_keys(sources, only={"PROTO001"})
        assert "PROTO001 src/repro/core/protocol.py:4" in keys  # Ping undispatched
        assert "PROTO001 src/repro/core/protocol.py:7" in keys  # Pong unconstructed

    def test_clean_protocol(self):
        sources = {
            path: text
            for path, text in PROTO_SOURCES.items()
        }
        sources["src/repro/core/protocol.py"] = (
            "class Message:\n"
            "    pass\n"
            "\n"
            "class Ping(Message):\n"
            "    pass\n"
            "\n"
            "class Pong(Message):\n"
            "    pass\n"
        )
        sources["src/repro/core/master.py"] = (
            "from repro.core.protocol import Ping, Pong\n"
            "\n"
            "def loop(comm, peer):\n"
            "    comm.send(peer, Ping(payload=1))\n"
            "    return comm.recv_expect(peer, Pong)\n"
        )
        assert fresh_keys(sources, only={"PROTO001"}) == []


# ---------------------------------------------------------------------------
# CFG001 — every config field read somewhere (project rule)
# ---------------------------------------------------------------------------

CFG_SOURCES = {
    "src/repro/config.py": (
        "class SystemConfig:\n"
        "    n_slaves: int = 4\n"
        "    dead_knob: float = 0.5\n"
        "\n"
        "class ObservabilityConfig:\n"
        "    enabled: bool = False\n"
    ),
    "src/repro/core/system.py": (
        "def build(cfg, obs):\n"
        "    return cfg.n_slaves + int(obs.enabled)\n"
    ),
}


class TestCFG001:
    def test_unread_field_is_flagged_at_its_declaration(self):
        keys = fresh_keys(CFG_SOURCES, only={"CFG001"})
        assert keys == ["CFG001 src/repro/config.py:3"]

    def test_getattr_with_literal_counts_as_a_read(self):
        sources = dict(CFG_SOURCES)
        sources["src/repro/core/system.py"] = (
            "def build(cfg, obs):\n"
            "    knob = getattr(cfg, 'dead_knob')\n"
            "    return cfg.n_slaves + knob + int(obs.enabled)\n"
        )
        assert fresh_keys(sources, only={"CFG001"}) == []

    def test_plumbing_reads_do_not_count(self):
        sources = dict(CFG_SOURCES)
        sources["src/repro/config.py"] += (
            "\n"
            "def validated(cfg):\n"
            "    assert cfg.dead_knob >= 0\n"
            "    return cfg\n"
        )
        # dead_knob is only read inside the plumbing: still dead.
        assert fresh_keys(sources, only={"CFG001"}) == [
            "CFG001 src/repro/config.py:3"
        ]
