"""Symbol table, call graph, and taint-fixpoint unit tests.

These exercise the interprocedural machinery directly (not through the
rules): name resolution across import styles, method/inheritance
resolution, first-order callable aliases, cycle safety, and witness
chains.
"""

from repro.lint.callgraph import CallGraph
from repro.lint.dataflow import TaintSpec, propagate
from repro.lint.source import Project, SourceFile
from repro.lint.symbols import SymbolTable, module_name


def project(sources):
    return Project(
        {path: SourceFile.parse(path, text) for path, text in sources.items()}
    )


def graph_of(sources):
    return CallGraph.build(project(sources))


def edges(graph):
    """``{(caller, callee, kind)}`` over the whole graph."""
    return {
        (site.caller, site.callee, site.kind)
        for sites in graph.calls.values()
        for site in sites
    }


class TestModuleName:
    def test_anchors_at_repro(self):
        assert module_name("src/repro/core/master.py") == "repro.core.master"
        assert module_name("src/repro/cli.py") == "repro.cli"

    def test_package_init_drops_the_suffix(self):
        assert module_name("src/repro/lint/__init__.py") == "repro.lint"

    def test_non_repro_paths_fall_back_to_the_stem(self):
        assert module_name("tmp/fixture.py") == "fixture"


class TestImportResolution:
    def test_plain_and_aliased_module_imports(self):
        g = graph_of(
            {
                "src/repro/util/a.py": "def f():\n    return 1\n",
                "src/repro/core/b.py": (
                    "import repro.util.a\n"
                    "import repro.util.a as ua\n"
                    "def g():\n"
                    "    repro.util.a.f()\n"
                    "    ua.f()\n"
                ),
            }
        )
        assert ("repro.core.b.g", "repro.util.a.f", "call") in edges(g)
        assert (
            sum(
                1
                for c, k, _ in edges(g)
                if c == "repro.core.b.g" and k == "repro.util.a.f"
            )
            == 1
        )  # both spellings resolve; the edge list is per-site, set-deduped here

    def test_from_import_with_alias(self):
        g = graph_of(
            {
                "src/repro/util/a.py": "def f():\n    return 1\n",
                "src/repro/core/b.py": (
                    "from repro.util.a import f as helper\n"
                    "def g():\n    helper()\n"
                ),
            }
        )
        assert ("repro.core.b.g", "repro.util.a.f", "call") in edges(g)

    def test_relative_import(self):
        g = graph_of(
            {
                "src/repro/core/__init__.py": "",
                "src/repro/core/a.py": "def f():\n    return 1\n",
                "src/repro/core/b.py": (
                    "from .a import f\ndef g():\n    f()\n"
                ),
            }
        )
        assert ("repro.core.b.g", "repro.core.a.f", "call") in edges(g)

    def test_reexport_canonicalizes(self):
        g = graph_of(
            {
                "src/repro/core/impl.py": "def f():\n    return 1\n",
                "src/repro/core/api.py": "from repro.core.impl import f\n",
                "src/repro/core/use.py": (
                    "from repro.core.api import f\ndef g():\n    f()\n"
                ),
            }
        )
        assert ("repro.core.use.g", "repro.core.impl.f", "call") in edges(g)

    def test_first_order_callable_alias(self):
        g = graph_of(
            {
                "src/repro/core/a.py": (
                    "def fast():\n    return 1\n\nprobe = fast\n"
                ),
                "src/repro/core/b.py": (
                    "from repro.core.a import probe\ndef g():\n    probe()\n"
                ),
            }
        )
        assert ("repro.core.b.g", "repro.core.a.fast", "call") in edges(g)

    def test_external_alias_records_an_external_call(self):
        g = graph_of(
            {
                "src/repro/core/a.py": (
                    "import time\n_clock = time.monotonic\n"
                    "def g():\n    return _clock()\n"
                )
            }
        )
        names = {
            e.name for exts in g.externals.values() for e in exts
        }
        assert "time.monotonic" in names


class TestMethods:
    SOURCES = {
        "src/repro/core/base.py": (
            "class Base:\n"
            "    def __init__(self):\n"
            "        self.setup()\n"
            "    def setup(self):\n"
            "        pass\n"
            "    def shared(self):\n"
            "        pass\n"
        ),
        "src/repro/core/derived.py": (
            "from repro.core.base import Base\n"
            "class Derived(Base):\n"
            "    def setup(self):\n"
            "        super().setup()\n"
            "        self.shared()\n"
            "def make():\n"
            "    return Derived()\n"
        ),
    }

    def test_self_method_resolves_in_own_class(self):
        e = edges(graph_of(self.SOURCES))
        assert (
            "repro.core.base.Base.__init__",
            "repro.core.base.Base.setup",
            "call",
        ) in e

    def test_super_skips_the_own_override(self):
        e = edges(graph_of(self.SOURCES))
        assert (
            "repro.core.derived.Derived.setup",
            "repro.core.base.Base.setup",
            "call",
        ) in e

    def test_inherited_method_found_through_the_mro(self):
        e = edges(graph_of(self.SOURCES))
        assert (
            "repro.core.derived.Derived.setup",
            "repro.core.base.Base.shared",
            "call",
        ) in e

    def test_construction_is_an_edge_to_init(self):
        e = edges(graph_of(self.SOURCES))
        assert (
            "repro.core.derived.make",
            "repro.core.base.Base.__init__",
            "call",
        ) in e

    def test_lookup_resolves_class_to_inherited_init(self):
        table = SymbolTable.build(project(self.SOURCES))
        fn = table.lookup("repro.core.derived.Derived")
        assert fn is not None
        assert fn.qualname == "repro.core.base.Base.__init__"


class TestGraphShape:
    def test_module_level_calls_use_the_module_pseudo_caller(self):
        g = graph_of(
            {
                "src/repro/core/a.py": (
                    "def f():\n    return 1\n\nVALUE = f()\n"
                )
            }
        )
        assert (
            "repro.core.a.<module>",
            "repro.core.a.f",
            "call",
        ) in edges(g)

    def test_function_reference_in_args_is_a_ref_edge(self):
        g = graph_of(
            {
                "src/repro/core/a.py": (
                    "def tick():\n    return 1\n"
                    "def schedule(fn):\n    return fn\n"
                    "def run():\n    schedule(tick)\n"
                )
            }
        )
        e = edges(g)
        assert ("repro.core.a.run", "repro.core.a.tick", "ref") in e
        assert ("repro.core.a.run", "repro.core.a.schedule", "call") in e

    def test_unresolvable_attribute_call_produces_no_edge(self):
        g = graph_of(
            {
                "src/repro/core/a.py": (
                    "def run(transport):\n    transport.send(1)\n"
                )
            }
        )
        assert edges(g) == set()
        assert g.externals == {}

    def test_recursion_and_mutual_recursion_terminate(self):
        g = graph_of(
            {
                "src/repro/core/a.py": (
                    "def odd(n):\n"
                    "    return n != 0 and even(n - 1)\n"
                    "def even(n):\n"
                    "    return n == 0 or odd(n - 1)\n"
                    "def loop(n):\n"
                    "    return loop(n)\n"
                )
            }
        )
        e = edges(g)
        assert ("repro.core.a.odd", "repro.core.a.even", "call") in e
        assert ("repro.core.a.even", "repro.core.a.odd", "call") in e
        assert ("repro.core.a.loop", "repro.core.a.loop", "call") in e


class TestTaintFixpoint:
    def spec(self):
        return TaintSpec(
            name="wall-clock",
            is_source=lambda name: name == "time.time",
            is_barrier=lambda path: path.endswith("runtime/thread.py"),
        )

    def test_taint_propagates_through_a_cycle(self):
        g = graph_of(
            {
                "src/repro/core/a.py": (
                    "import time\n"
                    "def ping(n):\n"
                    "    return pong(n)\n"
                    "def pong(n):\n"
                    "    time.time()\n"
                    "    return ping(n - 1)\n"
                    "def user():\n"
                    "    return ping(3)\n"
                )
            }
        )
        taints = propagate(g, self.spec())
        for qual in ("repro.core.a.ping", "repro.core.a.pong", "repro.core.a.user"):
            assert qual in taints
            assert taints.sink(qual) == "time.time"

    def test_barrier_absorbs_taint(self):
        g = graph_of(
            {
                "src/repro/runtime/thread.py": (
                    "import time\ndef now():\n    return time.time()\n"
                ),
                "src/repro/core/a.py": (
                    "from repro.runtime.thread import now\n"
                    "def step():\n    return now()\n"
                ),
            }
        )
        taints = propagate(g, self.spec())
        assert "repro.runtime.thread.now" not in taints
        assert "repro.core.a.step" not in taints

    def test_witness_chain_is_shortest_and_ordered(self):
        g = graph_of(
            {
                "src/repro/core/a.py": (
                    "import time\n"
                    "def sinkward():\n"
                    "    return time.time()\n"
                    "def middle():\n"
                    "    return sinkward()\n"
                    "def top():\n"
                    "    middle()\n"
                    "    sinkward()\n"
                )
            }
        )
        taints = propagate(g, self.spec())
        chain = [step.qualname for step in taints.chain("repro.core.a.top")]
        # top calls sinkward directly, so the shortest witness skips middle.
        assert chain == ["repro.core.a.top", "repro.core.a.sinkward"]
