"""Fixture corpus for the interprocedural rules SIM004/SIM005/PERF001.

Each fixture asserts exact rule ids *and* line numbers plus the witness
call-chain text — the chain is the rule's product, so it is pinned as
precisely as the location.
"""

from repro.lint import lint_sources


def fresh(sources, only):
    return sorted(lint_sources(sources, only=only).fresh)


def fresh_keys(sources, only):
    return [f.key for f in fresh(sources, only)]


# ---------------------------------------------------------------------------
# SIM004 — wall-clock taint
# ---------------------------------------------------------------------------

SIM004_SOURCES = {
    "src/repro/util/helper.py": (
        "import time\n"
        "\n"
        "def now():\n"
        "    return time.time()\n"
        "\n"
        "def wrap():\n"
        "    return now()\n"
    ),
    "src/repro/core/thing.py": (
        "from repro.util.helper import wrap\n"
        "\n"
        "def tick():\n"
        "    return wrap()\n"
    ),
}


class TestSIM004:
    def test_every_edge_into_the_tainted_closure_is_flagged(self):
        assert fresh_keys(SIM004_SOURCES, only={"SIM004"}) == [
            "SIM004 src/repro/core/thing.py:4",
            "SIM004 src/repro/util/helper.py:7",
        ]

    def test_message_carries_the_full_call_chain(self):
        finding = fresh(SIM004_SOURCES, only={"SIM004"})[0]
        assert (
            "call chain: repro.core.thing.tick -> repro.util.helper.wrap "
            "-> repro.util.helper.now -> time.time" in finding.message
        )

    def test_chain_field_has_one_location_per_hop(self):
        finding = fresh(SIM004_SOURCES, only={"SIM004"})[0]
        assert finding.chain == (
            "repro.core.thing.tick (src/repro/core/thing.py:4)",
            "repro.util.helper.wrap (src/repro/util/helper.py:7)",
            "repro.util.helper.now (src/repro/util/helper.py:4)",
            "time.time",
        )

    def test_allowlisted_runtime_may_call_tainted_helpers(self):
        sources = dict(SIM004_SOURCES)
        del sources["src/repro/core/thing.py"]
        sources["src/repro/runtime/thread.py"] = (
            "from repro.util.helper import wrap\n"
            "def drive():\n    return wrap()\n"
        )
        # The helper-internal edge is still flagged; the runtime's is not.
        assert fresh_keys(sources, only={"SIM004"}) == [
            "SIM004 src/repro/util/helper.py:7"
        ]

    def test_chains_through_the_runtime_are_absorbed(self):
        sources = {
            "src/repro/runtime/thread.py": (
                "import time\ndef now():\n    return time.time()\n"
            ),
            "src/repro/core/thing.py": (
                "from repro.runtime.thread import now\n"
                "def tick():\n    return now()\n"
            ),
        }
        assert fresh_keys(sources, only={"SIM004"}) == []

    def test_ref_edge_says_may_invoke(self):
        sources = {
            "src/repro/util/helper.py": (
                "import time\n"
                "def now():\n"
                "    return time.time()\n"
            ),
            "src/repro/core/thing.py": (
                "from repro.util.helper import now\n"
                "def register(cb):\n"
                "    return cb\n"
                "def setup():\n"
                "    register(now)\n"
            ),
        }
        findings = fresh(sources, only={"SIM004"})
        ref = [f for f in findings if "may invoke" in f.message]
        assert [f.key for f in ref] == ["SIM004 src/repro/core/thing.py:5"]


# ---------------------------------------------------------------------------
# SIM005 — RNG taint
# ---------------------------------------------------------------------------

SIM005_SOURCES = {
    "src/repro/util/pick.py": (
        "import random\n"
        "\n"
        "def choose(xs):\n"
        "    return random.choice(xs)\n"
    ),
    "src/repro/core/alg.py": (
        "from repro.util.pick import choose\n"
        "\n"
        "def run(xs):\n"
        "    return choose(xs)\n"
    ),
}


class TestSIM005:
    def test_caller_of_rng_tainted_helper_is_flagged(self):
        assert fresh_keys(SIM005_SOURCES, only={"SIM005"}) == [
            "SIM005 src/repro/core/alg.py:4"
        ]

    def test_chain_names_the_rng_sink(self):
        finding = fresh(SIM005_SOURCES, only={"SIM005"})[0]
        assert "random.choice" in finding.message
        assert finding.chain[-1] == "random.choice"

    def test_rng_registry_module_is_a_barrier(self):
        sources = {
            "src/repro/simul/rng.py": (
                "import numpy as np\n"
                "def substream(seed):\n"
                "    return np.random.default_rng(seed)\n"
            ),
            "src/repro/core/alg.py": (
                "from repro.simul.rng import substream\n"
                "def run():\n    return substream(7)\n"
            ),
        }
        assert fresh_keys(sources, only={"SIM005"}) == []

    def test_numpy_generator_type_references_stay_exempt(self):
        sources = {
            "src/repro/core/alg.py": (
                "import numpy as np\n"
                "def run(rng):\n"
                "    assert isinstance(rng, np.random.Generator)\n"
                "    return rng\n"
            )
        }
        assert fresh_keys(sources, only={"SIM005"}) == []


# ---------------------------------------------------------------------------
# PERF001 — blocking reachability on the hot path
# ---------------------------------------------------------------------------

PERF_SOURCES = {
    "src/repro/util/helpers.py": (
        "import socket\n"
        "\n"
        "def poke(host):\n"
        "    s = socket.socket()\n"
        "    s.connect((host, 1))\n"
    ),
    "src/repro/core/join_module.py": (
        "import time\n"
        "from repro.util.helpers import poke\n"
        "\n"
        "def probe(host):\n"
        "    poke(host)\n"
        "\n"
        "def pause():\n"
        "    time.sleep(1)\n"
    ),
}


class TestPERF001:
    def test_transitive_and_direct_blocking_calls_are_flagged(self):
        assert fresh_keys(PERF_SOURCES, only={"PERF001"}) == [
            "PERF001 src/repro/core/join_module.py:5",
            "PERF001 src/repro/core/join_module.py:8",
        ]

    def test_direct_call_message_and_chain(self):
        findings = fresh(PERF_SOURCES, only={"PERF001"})
        direct = [f for f in findings if f.line == 8][0]
        assert "blocking call `time.sleep`" in direct.message
        assert direct.chain == (
            "repro.core.join_module.pause "
            "(src/repro/core/join_module.py:8)",
            "time.sleep",
        )

    def test_out_of_scope_modules_are_not_roots(self):
        sources = dict(PERF_SOURCES)
        sources["src/repro/core/slave.py"] = sources.pop(
            "src/repro/core/join_module.py"
        )
        # slave.py is not a modeled hot path: no PERF001 findings there.
        assert fresh_keys(sources, only={"PERF001"}) == []

    def test_transport_layers_are_barriers(self):
        sources = {
            "src/repro/net/sockets.py": (
                "import socket\n"
                "def dial(host):\n    return socket.create_connection((host, 1))\n"
            ),
            "src/repro/core/master.py": (
                "from repro.net.sockets import dial\n"
                "def epoch(host):\n    return dial(host)\n"
            ),
        }
        assert fresh_keys(sources, only={"PERF001"}) == []

    def test_open_on_the_hot_path_is_flagged(self):
        sources = {
            "src/repro/data/soa.py": (
                "def dump(path, rows):\n"
                "    with open(path, 'w') as fh:\n"
                "        fh.write(str(rows))\n"
            )
        }
        assert fresh_keys(sources, only={"PERF001"}) == [
            "PERF001 src/repro/data/soa.py:2"
        ]


# ---------------------------------------------------------------------------
# Project-rule findings honor line-scoped pragmas (regression)
# ---------------------------------------------------------------------------


class TestProjectRulePragmas:
    def test_sim004_finding_is_pragma_suppressible(self):
        sources = dict(SIM004_SOURCES)
        sources["src/repro/core/thing.py"] = (
            "from repro.util.helper import wrap\n"
            "\n"
            "def tick():\n"
            "    return wrap()  # lint: disable=SIM004\n"
        )
        result = lint_sources(sources, only={"SIM004"})
        assert [f.key for f in result.fresh] == [
            "SIM004 src/repro/util/helper.py:7"
        ]
        assert result.suppressed == 1

    def test_perf001_direct_finding_is_pragma_suppressible(self):
        sources = {
            "src/repro/data/soa.py": (
                "def dump(path, rows):\n"
                "    with open(path, 'w') as fh:  # lint: disable=PERF001\n"
                "        fh.write(str(rows))\n"
            )
        }
        result = lint_sources(sources, only={"PERF001"})
        assert result.fresh == []
        assert result.suppressed == 1

    def test_pragma_is_line_scoped_for_project_rules(self):
        sources = dict(SIM004_SOURCES)
        sources["src/repro/core/thing.py"] = (
            "from repro.util.helper import wrap\n"
            "\n"
            "def tick():\n"
            "    wrap()  # lint: disable=SIM004\n"
            "    return wrap()\n"
        )
        result = lint_sources(sources, only={"SIM004"})
        keys = [f.key for f in result.fresh]
        assert "SIM004 src/repro/core/thing.py:5" in keys
        assert "SIM004 src/repro/core/thing.py:4" not in keys
