"""Self-check: the repo's own sources must satisfy their own linter.

This is the ISSUE's acceptance gate: ``swjoin lint src/repro`` exits 0
with no (or an annotated, shrinking) baseline.  Running it as a pytest
test keeps the invariant enforced even where CI is unavailable.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def test_src_repro_is_lint_clean():
    result = lint_paths([str(SRC_REPRO)])
    detail = "\n".join(f.render() for f in result.fresh)
    assert result.ok, f"fresh lint findings in src/repro:\n{detail}"
    assert result.n_files > 50  # sanity: we actually walked the tree


def test_lint_baseline_stays_empty():
    """The SIM003 epoch-arithmetic entry (repro#7) was the baseline's
    last accepted finding.  With it retired the file is header-only and
    must stay that way: new findings get fixed, not baselined."""
    from repro.lint.baseline import Baseline

    path = REPO_ROOT / "lint-baseline.txt"
    assert path.exists(), "lint-baseline.txt deleted: keep the header file"
    baseline = Baseline.load(str(path))
    rendered = "\n".join(e.render() for e in baseline.entries)
    assert len(baseline) == 0, f"lint-baseline.txt grew entries:\n{rendered}"


def test_tcp_modules_are_allowlisted_and_carry_zero_findings():
    """Regression for the PR 9 allowlist widening: the TCP transport
    and backend are wall-clock/socket modules (SIM001/SIM004 allowlist,
    PERF001 barrier via ``repro/net/``+``repro/runtime/``) and must
    land with zero fresh findings of their own."""
    from repro.lint.rules.simtime import WALL_CLOCK_ALLOWED_SUFFIXES
    from repro.lint.rules.taint import BLOCKING_ALLOWED_FRAGMENTS

    assert "repro/net/tcp_transport.py" in WALL_CLOCK_ALLOWED_SUFFIXES
    assert "repro/runtime/tcp.py" in WALL_CLOCK_ALLOWED_SUFFIXES
    assert any("repro/net/" in f for f in BLOCKING_ALLOWED_FRAGMENTS)
    assert any("repro/runtime/" in f for f in BLOCKING_ALLOWED_FRAGMENTS)

    result = lint_paths([str(SRC_REPRO)])
    tcp_findings = [
        f
        for f in result.fresh
        if f.path.endswith(("net/tcp_transport.py", "runtime/tcp.py"))
    ]
    detail = "\n".join(f.render() for f in tcp_findings)
    assert tcp_findings == [], f"fresh findings in the TCP modules:\n{detail}"


def test_full_pass_fits_the_precommit_budget():
    """The whole-project pass (symbol table + call graph + three taint
    fixpoints + codec cross-check) must stay fast enough to run
    uncached on every commit: < 30 s wall, with the CI lint job
    asserting the same bound end-to-end."""
    import time

    start = time.perf_counter()  # lint: disable=SIM001
    result = lint_paths([str(SRC_REPRO)])
    elapsed = time.perf_counter() - start  # lint: disable=SIM001
    assert result.n_files > 50
    assert elapsed < 30.0, f"lint pass took {elapsed:.1f}s (budget 30s)"


def test_tests_trees_parse():
    # Rules target src/repro; for tests we only insist the engine can
    # parse everything (PARSE findings would hide real syntax errors).
    result = lint_paths([str(REPO_ROOT / "tests")], only={"__none__"})
    parse_errors = [f for f in result.fresh if f.rule == "PARSE"]
    assert parse_errors == []


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed (lint extra)"
)
def test_mypy_strict_gate():
    """Run the pinned mypy configuration when the tool is available.

    The strict set and the shrink-only exclusion allowlist live in
    pyproject.toml; this test just executes them.
    """
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
