"""The wall-clock backend: the same node generators on real threads."""

import time

import pytest

from repro.core.protocol import Halt, Shipment
from repro.data.tuples import TupleBatch
from repro.net.thread_transport import ThreadTransport
from repro.runtime.thread import ThreadRuntime


class TestThreadRuntime:
    def test_sleep_and_now(self):
        rt = ThreadRuntime(time_scale=0.02)  # 50x faster than real time
        t0 = rt.now()
        rt.sleep(1.0).run()  # one virtual second = 20 ms wall
        assert rt.now() - t0 >= 0.9

    def test_spawn_and_join(self):
        rt = ThreadRuntime(time_scale=0.01)
        log = []

        def node():
            yield rt.sleep(0.5)
            log.append("done")

        handle = rt.spawn(node(), name="n")
        handle.join(timeout=5.0)
        assert log == ["done"]
        assert not handle.is_alive

    def test_node_errors_surface_on_join(self):
        rt = ThreadRuntime(time_scale=0.01)

        def bad():
            yield rt.sleep(0.1)
            raise ValueError("boom")

        handle = rt.spawn(bad())
        with pytest.raises(ValueError, match="boom"):
            handle.join(timeout=5.0)

    def test_yielding_garbage_is_reported(self):
        rt = ThreadRuntime(time_scale=0.01)

        def bad():
            yield 42

        handle = rt.spawn(bad())
        with pytest.raises(TypeError):
            handle.join(timeout=5.0)

    def test_locks_and_queues(self):
        rt = ThreadRuntime(time_scale=0.01)
        lock = rt.make_lock()
        queue = rt.make_queue()
        order = []

        def producer():
            for i in range(3):
                yield queue.put(i)
                yield rt.sleep(0.05)

        def consumer():
            for _ in range(3):
                item = yield queue.get()
                yield lock.acquire()
                order.append(item)
                lock.release()

        rt.spawn(producer())
        rt.spawn(consumer())
        rt.join_all(timeout=10.0)
        assert order == [0, 1, 2]


class TestThreadTransport:
    def test_rendezvous_send_recv(self):
        rt = ThreadRuntime(time_scale=0.01)
        transport = ThreadTransport(tuple_bytes=64, time_scale=0.01)
        a = transport.endpoint(1)
        b = transport.endpoint(2)
        got = []

        def sender():
            yield a.send(2, Shipment(0, 0.0, 1.0, TupleBatch.empty()))
            yield a.send(2, Halt(1))

        def receiver():
            while True:
                msg = yield b.recv(1)
                got.append(type(msg).__name__)
                if isinstance(msg, Halt):
                    return

        rt.spawn(sender())
        rt.spawn(receiver())
        rt.join_all(timeout=10.0)
        assert got == ["Shipment", "Halt"]

    def test_send_blocks_until_received(self):
        transport = ThreadTransport(tuple_bytes=64, time_scale=1.0)
        a = transport.endpoint(1)
        b = transport.endpoint(2)
        rt = ThreadRuntime()
        timeline = {}

        def sender():
            t0 = time.monotonic()
            yield a.send(2, "x")
            timeline["sent"] = time.monotonic() - t0

        def receiver():
            yield rt.sleep(0.2)
            yield b.recv(1)

        rt.spawn(sender())
        rt.spawn(receiver())
        rt.join_all(timeout=10.0)
        assert timeline["sent"] >= 0.15  # waited for the receiver
