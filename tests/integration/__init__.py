"""Test package."""
