"""End-to-end cluster runs on small configurations."""

import numpy as np
import pytest

from repro import JoinSystem, SystemConfig
from repro.core.system import RunResult


@pytest.fixture(scope="module")
def result() -> RunResult:
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.01)
        .with_(
            npart=12,
            rate=400.0,
            num_slaves=2,
            run_seconds=12.0,
            warmup_seconds=6.0,
            window_seconds=3.0,
            reorg_epoch=4.0,
        )
    )
    return JoinSystem(cfg).run()


class TestRunResult:
    def test_outputs_produced(self, result):
        assert result.outputs > 0
        assert result.avg_delay > 0.0

    def test_collector_matches_local_statistics(self, result):
        assert result.collector_delays.count == result.delays.count
        assert result.collector_delays.total == pytest.approx(
            result.delays.total
        )

    def test_every_slave_worked(self, result):
        for snap in result.slaves:
            assert snap["cpu_total"] > 0.0
            assert snap["comm_time"] > 0.0
            assert snap["tuples_processed"] > 0

    def test_idle_decomposition(self, result):
        for idle, snap in zip(result.idle_times, result.slaves):
            assert 0.0 <= idle <= result.duration
            assert idle == pytest.approx(
                max(
                    0.0,
                    result.duration - snap["cpu_total"] - snap["comm_time"],
                )
            )

    def test_master_counters(self, result):
        assert result.master["epochs"] > 0
        assert result.master["reorgs"] >= 1
        assert result.master["tuples_ingested"] > 0
        assert result.master["max_buffer_bytes"] > 0

    def test_windows_bounded_by_workload(self, result):
        # A slave can never hold more than the full two-stream window
        # (plus block rounding): rate * W * 64 B * 2 streams.
        cfg = result.cfg
        bound = 2 * cfg.rate * cfg.window_seconds * cfg.tuple_bytes
        assert 0 < result.max_window_bytes < 2.0 * bound

    def test_summary_renders(self, result):
        text = result.summary()
        assert "outputs" in text
        assert "per-slave cpu" in text

    def test_to_dict_roundtrips_scalars(self, result):
        d = result.to_dict()
        assert d["outputs"] == result.outputs
        assert d["avg_delay"] == result.avg_delay


class TestDeterminism:
    def test_same_seed_same_everything(self, tiny_cfg):
        a = JoinSystem(tiny_cfg).run()
        b = JoinSystem(tiny_cfg).run()
        assert a.outputs == b.outputs
        assert a.avg_delay == b.avg_delay
        assert a.cpu_times == b.cpu_times
        assert a.comm_times == b.comm_times

    def test_different_seed_differs(self, tiny_cfg):
        a = JoinSystem(tiny_cfg).run()
        b = JoinSystem(tiny_cfg.with_(seed=99)).run()
        assert a.outputs != b.outputs


class TestConfigurationVariants:
    def test_single_slave(self, tiny_cfg):
        result = JoinSystem(tiny_cfg.with_(num_slaves=1)).run()
        assert result.outputs > 0

    def test_subgroup_communication(self, tiny_cfg):
        result = JoinSystem(
            tiny_cfg.with_(num_slaves=4, num_subgroups=2)
        ).run()
        assert result.outputs > 0
        # The sub-grouped master drains twice per epoch: its peak
        # buffer stays below the single-group peak.
        single = JoinSystem(tiny_cfg.with_(num_slaves=4)).run()
        assert (
            result.master["max_buffer_bytes"]
            <= single.master["max_buffer_bytes"]
        )

    def test_no_fine_tuning_runs(self, tiny_cfg):
        result = JoinSystem(tiny_cfg.with_(fine_tuning=False)).run()
        assert result.outputs > 0
        assert sum(s["splits"] for s in result.slaves) == 0

    def test_load_balancing_disabled_means_no_moves(self, tiny_cfg):
        result = JoinSystem(
            tiny_cfg.with_(load_balancing=False, rate=800.0)
        ).run()
        assert result.master["moves_ordered"] == 0

    def test_adaptive_declustering_shrinks_idle_cluster(self, tiny_cfg):
        cfg = tiny_cfg.with_(
            num_slaves=4, rate=100.0, adaptive_declustering=True,
            run_seconds=24.0, warmup_seconds=6.0,
        )
        result = JoinSystem(cfg).run()
        assert result.final_active_slaves < 4
        assert result.outputs > 0

    def test_initial_active_subset_grows_under_load(self, tiny_cfg):
        cfg = tiny_cfg.with_(
            num_slaves=4,
            rate=2500.0,
            adaptive_declustering=True,
            initial_active_slaves=1,
            run_seconds=24.0,
            warmup_seconds=6.0,
        )
        result = JoinSystem(cfg).run()
        assert result.final_active_slaves > 1

    def test_epoch_timing_variants(self, tiny_cfg):
        for td in (0.5, 1.0, 3.0):
            cfg = tiny_cfg.with_(dist_epoch=td, reorg_epoch=max(4.0, 4 * td))
            result = JoinSystem(cfg).run()
            assert result.outputs > 0
