"""The experiment harness: tables, series, canned experiments."""

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    base_config,
    run_experiment,
)
from repro.analysis.series import Experiment
from repro.analysis.tables import format_table


class TestTables:
    def test_format_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.333333}]
        text = format_table(rows)
        assert "a" in text and "b" in text
        assert "0.3333" in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestExperimentContainer:
    def test_add_and_series(self):
        exp = Experiment("x", "t", "e", ["rate", "y"])
        exp.add(rate=1, y=10.0)
        exp.add(rate=2, y=20.0)
        assert exp.series("y") == [10.0, 20.0]
        assert exp.series("y", where={"rate": 2}) == [20.0]

    def test_render_and_markdown(self):
        exp = Experiment("x", "Title", "Expect.", ["a"])
        exp.add(a=1.23456)
        exp.notes.append("a note")
        assert "Title" in exp.render()
        md = exp.to_markdown()
        assert md.startswith("### x")
        assert "| a |" in md
        assert "a note" in md


class TestRegistry:
    def test_all_figures_present(self):
        for fig in (
            "fig05", "fig06", "fig07", "fig08", "fig09",
            "fig10", "fig11", "fig12", "fig13", "fig14",
        ):
            assert fig in EXPERIMENTS

    def test_ablations_present(self):
        for name in (
            "subgroup_buffer",
            "ablation_theta",
            "ablation_npart",
            "ablation_thresholds",
            "ablation_beta",
            "baselines_skew",
        ):
            assert name in EXPERIMENTS

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_base_config_scales(self):
        cfg = base_config(0.02)
        assert cfg.window_seconds == pytest.approx(12.0)


class TestQuickExperiments:
    """Smoke-run a few quick experiments at a very small scale."""

    def test_fig05_quick(self):
        exp = run_experiment("fig05", scale=0.01, quick=True)
        assert exp.rows
        assert set(exp.columns) <= set(exp.rows[0])

    def test_fig13_quick_shape(self):
        exp = run_experiment("fig13", scale=0.01, quick=True)
        delays = exp.series("avg_delay_s")
        # Longer epochs mean longer waits at the master.
        assert delays[-1] > delays[0]

    def test_subgroup_buffer_quick(self):
        exp = run_experiment("subgroup_buffer", scale=0.01, quick=True)
        measured = exp.series("measured_peak_bytes")
        assert measured[0] > measured[-1]  # ng=4 peak below ng=1 peak
