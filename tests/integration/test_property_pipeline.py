"""Property-based end-to-end test: arbitrary small workloads through
the full cluster equal the oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JoinSystem, SystemConfig
from repro.data.tuples import TupleBatch
from repro.reference import naive_window_join
from repro.workload.traces import TraceReplayer


@st.composite
def workload_traces(draw):
    """A small random two-stream trace over [0, 8) seconds."""
    n = draw(st.integers(1, 120))
    ts = sorted(
        draw(
            st.lists(
                st.floats(0.0, 8.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    keys = draw(
        st.lists(st.integers(0, 6), min_size=n, max_size=n)
    )
    streams = draw(
        st.lists(st.integers(0, 1), min_size=n, max_size=n)
    )
    seq = {0: 0, 1: 0}
    seqs = []
    for s in streams:
        seqs.append(seq[s])
        seq[s] += 1
    return TupleBatch.build(ts=ts, key=keys, seq=seqs, stream=streams)


CFG = (
    SystemConfig.paper_defaults()
    .scaled(0.01)
    .with_(
        npart=6,
        num_slaves=3,
        rate=100.0,  # unused: trace-driven
        run_seconds=14.0,
        warmup_seconds=1.0,
        window_seconds=3.0,
        reorg_epoch=4.0,
        theta_bytes=4096,
    )
)


@given(trace=workload_traces(), n_slaves=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_pipeline_equals_oracle_on_arbitrary_traces(trace, n_slaves):
    cfg = CFG.with_(num_slaves=n_slaves)
    result = JoinSystem(
        cfg, collect_pairs=True, workload=TraceReplayer(trace)
    ).run()
    got = result.pairs
    got = got[np.lexsort((got[:, 1], got[:, 0]))]
    expected = naive_window_join(trace, cfg.window_seconds)
    assert np.array_equal(got, expected)


@given(trace=workload_traces())
@settings(max_examples=15, deadline=None)
def test_pipeline_deterministic_per_trace(trace):
    runs = [
        JoinSystem(CFG, collect_pairs=True, workload=TraceReplayer(trace)).run()
        for _ in range(2)
    ]
    assert np.array_equal(runs[0].pairs, runs[1].pairs)
    assert runs[0].delays.total == runs[1].delays.total
