"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.rate == 1500.0
        assert args.slaves == 4

    def test_experiment_args(self):
        args = build_parser().parse_args(
            ["experiment", "fig07", "--quick", "--scale", "0.02"]
        )
        assert args.name == "fig07"
        assert args.quick
        assert args.scale == 0.02

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out
        assert "baselines_skew" in out

    def test_run_tiny(self, capsys):
        code = main(
            [
                "run",
                "--rate",
                "300",
                "--slaves",
                "2",
                "--scale",
                "0.01",
                "--npart",
                "12",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "outputs:" in out
        assert "per-slave cpu" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiment", "fig99"])
