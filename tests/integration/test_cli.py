"""The command-line interface."""

import pytest

from repro.cli import _parse_peers, build_parser, main
from repro.errors import ConfigError


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.rate == 1500.0
        assert args.slaves == 4

    def test_run_tcp_backend_with_peers(self):
        args = build_parser().parse_args(
            ["run", "--backend", "tcp",
             "--peers", "3=10.0.0.2:7000", "--peers", "4=10.0.0.3:7001"]
        )
        assert args.backend == "tcp"
        assert _parse_peers(args.peers) == (
            (3, "10.0.0.2:7000"), (4, "10.0.0.3:7001"),
        )

    def test_peers_accept_comma_separated_entries(self):
        assert _parse_peers(["2=h1:70, 3=h2:71"]) == (
            (2, "h1:70"), (3, "h2:71"),
        )

    def test_malformed_peers_entry_rejected(self):
        with pytest.raises(ConfigError, match="NODE=HOST:PORT"):
            _parse_peers(["not-a-peer"])
        with pytest.raises(ConfigError, match="NODE=HOST:PORT"):
            _parse_peers(["x=host:70"])

    def test_worker_requires_listen(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])
        args = build_parser().parse_args(
            ["worker", "--listen", "0.0.0.0:7000"]
        )
        assert args.command == "worker"
        assert args.listen == "0.0.0.0:7000"

    def test_experiment_args(self):
        args = build_parser().parse_args(
            ["experiment", "fig07", "--quick", "--scale", "0.02"]
        )
        assert args.name == "fig07"
        assert args.quick
        assert args.scale == 0.02

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out
        assert "baselines_skew" in out

    def test_run_tiny(self, capsys):
        code = main(
            [
                "run",
                "--rate",
                "300",
                "--slaves",
                "2",
                "--scale",
                "0.01",
                "--npart",
                "12",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "outputs:" in out
        assert "per-slave cpu" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiment", "fig99"])
