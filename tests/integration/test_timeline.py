"""The collector's per-epoch delay timeline."""

import pytest

from repro import JoinSystem
from repro.workload.arrivals import RateProfile
from repro.workload.generator import TwoStreamWorkload
from repro.simul.rng import RngRegistry


class TestDelayTimeline:
    def test_timeline_totals_match_global_stats(self, tiny_cfg):
        result = JoinSystem(tiny_cfg).run()
        assert sum(c for _, c, _ in result.delay_timeline) == result.outputs

    def test_epochs_are_increasing(self, tiny_cfg):
        result = JoinSystem(tiny_cfg).run()
        epochs = [e for e, _, _ in result.delay_timeline]
        assert epochs == sorted(epochs)

    def test_surge_shows_up_in_the_timeline(self, tiny_cfg):
        cfg = tiny_cfg.with_(
            num_slaves=1, run_seconds=24.0, warmup_seconds=2.0
        )
        profile = RateProfile.step(12.0, 200.0, 4000.0)
        workload = TwoStreamWorkload.poisson_bmodel(
            RngRegistry(cfg.seed), profile, cfg.b_skew, cfg.key_domain
        )
        result = JoinSystem(cfg, workload=workload).run()
        before = [m for e, _, m in result.delay_timeline
                  if (e + 1) * cfg.dist_epoch <= 12.0]
        after = [m for e, _, m in result.delay_timeline
                 if (e + 1) * cfg.dist_epoch > 16.0]
        assert before and after
        assert max(after) > 2 * max(before)
