"""Failure injection and edge-of-envelope behaviour."""

import numpy as np
import pytest

from repro import JoinSystem, SystemConfig
from repro.core.protocol import Halt, ReorgOrder, Shipment, SlaveSync
from repro.data.tuples import TupleBatch
from repro.errors import DeadlockError, ProtocolError
from repro.mp.comm import Communicator
from repro.net.sim_transport import SimTransport
from repro.simul.kernel import Simulator
from repro.workload.traces import TraceReplayer


class TestProtocolViolations:
    def test_wrong_message_type_raises_protocol_error(self):
        """A slave receiving a Shipment when the schedule says
        ReorgOrder must fail loudly, not misbehave silently."""
        sim = Simulator()
        transport = SimTransport(
            sim, SystemConfig.paper_defaults().network, 64
        )
        master = Communicator(transport.endpoint(0))
        slave = Communicator(transport.endpoint(1))

        def master_proc(sim):
            yield master.send(1, Shipment(0, 0.0, 2.0, TupleBatch.empty()))

        def slave_proc(sim):
            yield from slave.recv_expect(0, ReorgOrder, Halt)

        sim.process(master_proc(sim))
        p = sim.process(slave_proc(sim))
        with pytest.raises(ProtocolError):
            sim.run(until=p)

    def test_missing_counterpart_deadlocks_detectably(self):
        """A send with no matching recv leaves the system blocked; the
        kernel reports it instead of hanging forever."""
        sim = Simulator()
        transport = SimTransport(
            sim, SystemConfig.paper_defaults().network, 64
        )
        comm = Communicator(transport.endpoint(0))

        def lonely(sim):
            yield comm.send(1, SlaveSync(0, None))

        p = sim.process(lonely(sim))
        with pytest.raises(DeadlockError):
            sim.run(until=p)


class TestWorkloadEdges:
    def test_zero_arrivals_run(self, tiny_cfg):
        """Empty streams: the system runs and produces nothing."""
        empty = TraceReplayer(TupleBatch.empty())
        result = JoinSystem(tiny_cfg, workload=empty).run()
        assert result.outputs == 0
        assert result.avg_delay == 0.0

    def test_single_tuple_no_partner(self, tiny_cfg):
        lonely = TupleBatch.build(ts=[1.0], key=[7], seq=[0], stream=0)
        result = JoinSystem(
            tiny_cfg, collect_pairs=True, workload=TraceReplayer(lonely)
        ).run()
        assert result.outputs == 0
        assert len(result.pairs) == 0

    def test_burst_then_silence(self, tiny_cfg):
        """A single dense burst: all pairs found, then windows expire
        and the system idles to the end without issue."""
        n = 400
        rng = np.random.default_rng(0)
        burst = TupleBatch.build(
            ts=np.sort(rng.uniform(0.0, 0.5, n)),
            key=rng.integers(0, 20, n),
            seq=np.arange(n),
            stream=rng.integers(0, 2, n),
        )
        # Fix per-stream seqs for pair identity.
        s0 = burst.stream == 0
        seq = np.zeros(n, dtype=np.int64)
        seq[s0] = np.arange(int(s0.sum()))
        seq[~s0] = np.arange(int((~s0).sum()))
        burst = TupleBatch(burst.ts, burst.key, seq, burst.stream)

        from repro.reference import naive_window_join

        result = JoinSystem(
            tiny_cfg, collect_pairs=True, workload=TraceReplayer(burst)
        ).run()
        got = result.pairs
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        assert np.array_equal(
            got, naive_window_join(burst, tiny_cfg.window_seconds)
        )

    def test_all_tuples_one_key(self, tiny_cfg):
        """Degenerate hot-key workload: quadratic output, single
        unsplittable mini-group, still exact."""
        n = 150
        hot = TupleBatch.build(
            ts=np.linspace(0.0, 4.0, n),
            key=np.full(n, 42),
            seq=np.concatenate(
                [np.arange((n + 1) // 2), np.arange(n // 2)]
            ),
            stream=np.arange(n) % 2,
        )
        from repro.reference import naive_window_join

        result = JoinSystem(
            tiny_cfg, collect_pairs=True, workload=TraceReplayer(hot)
        ).run()
        expected = naive_window_join(hot, tiny_cfg.window_seconds)
        assert result.pairs is not None
        assert len(result.pairs) == len(expected)

    def test_window_longer_than_run(self, tiny_cfg):
        """Nothing ever expires; joins still exact."""
        cfg = tiny_cfg.with_(window_seconds=1000.0)
        result = JoinSystem(cfg).run()
        assert result.outputs > 0


class TestExtremePressure:
    def test_massive_overload_stays_correct_and_terminates(self, tiny_cfg):
        """10x capacity: the run finishes (bounded passes + halt), all
        invariants hold, delay reflects the backlog."""
        cfg = tiny_cfg.with_(num_slaves=1, rate=6000.0)
        result = JoinSystem(cfg).run()
        assert result.avg_delay > 1.0
        assert result.idle_times[0] == pytest.approx(0.0, abs=0.2)

    def test_tiny_epochs(self, tiny_cfg):
        cfg = tiny_cfg.with_(dist_epoch=0.1, reorg_epoch=1.0)
        result = JoinSystem(cfg).run()
        assert result.outputs > 0
        assert result.master["epochs"] > 50

    def test_many_subgroups(self, tiny_cfg):
        cfg = tiny_cfg.with_(num_slaves=4, num_subgroups=4)
        result = JoinSystem(cfg).run()
        assert result.outputs > 0
