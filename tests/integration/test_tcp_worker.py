"""Loopback multi-process smoke for ``swjoin worker``.

A worker launched as its own CLI process (the way a remote host would
run it) serves one cluster node via the ``--peers`` map; the launcher
forks the rest locally.  The joined-pair multiset must still equal the
crash-free oracle, and the worker must exit 0 after its single run.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.system import JoinSystem
from repro.reference import naive_window_join
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer

import repro

SRC_ROOT = Path(repro.__file__).resolve().parents[1]


def launch_worker() -> tuple[subprocess.Popen, int]:
    """Start ``swjoin worker`` on an ephemeral loopback port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline().strip()
    assert "listening on" in line, f"unexpected worker banner: {line!r}"
    return proc, int(line.rsplit(":", 1)[1])


@pytest.fixture
def worker():
    proc, port = launch_worker()
    try:
        yield proc, port
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


def test_worker_cli_serves_one_node_and_matches_oracle(worker):
    proc, port = worker
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.01)
        .with_(
            num_slaves=2,
            npart=8,
            rate=150.0,
            run_seconds=10.0,
            warmup_seconds=2.0,
            window_seconds=3.0,
            reorg_epoch=4.0,
            backend="tcp",
            time_scale=0.02,
            # Slave 1 (node 3) lives in the worker process; master,
            # collector and slave 0 are forked locally by the launcher.
            tcp_peers=((3, f"127.0.0.1:{port}"),),
        )
    )
    wl = TwoStreamWorkload.poisson_bmodel(
        RngRegistry(5), cfg.rate, cfg.b_skew, 10_000
    )
    trace = wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)
    result = JoinSystem(
        cfg, collect_pairs=True, workload=TraceReplayer(trace)
    ).run()

    pairs = result.pairs
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    oracle = naive_window_join(trace, cfg.window_seconds)
    assert len(oracle), "degenerate workload: oracle joined nothing"
    assert np.array_equal(pairs[order], oracle)
    # One run served, clean exit: the worker is a one-shot process.
    assert proc.wait(timeout=30) == 0


def test_version_skewed_client_is_rejected_and_worker_survives(worker):
    """A connection speaking the wrong wire version must be refused
    without killing the worker — it keeps listening for the launcher."""
    import socket as socket_mod

    from repro.net.tcp_transport import HELLO, KIND_CONTROL, read_hello
    from repro.net.wire import MAGIC, WIRE_VERSION

    proc, port = worker
    bad = socket_mod.create_connection(("127.0.0.1", port), timeout=5.0)
    bad.sendall(HELLO.pack(MAGIC, WIRE_VERSION + 1, KIND_CONTROL, -1))
    # The worker drops the connection without replying.
    assert bad.recv(64) == b""
    bad.close()
    assert proc.poll() is None, "worker died on a version-skewed hello"

    # A well-formed control hello still gets through afterwards.
    good = socket_mod.create_connection(("127.0.0.1", port), timeout=5.0)
    good.sendall(HELLO.pack(MAGIC, WIRE_VERSION, KIND_CONTROL, -1))
    assert read_hello(good, 5.0) == (KIND_CONTROL, -1)
    good.close()
