"""Theory vs simulation: the closed-form capacity model must predict
where the simulated system saturates."""

import pytest

from repro import JoinSystem, SystemConfig
from repro.analysis.capacity import (
    capacity_table,
    mean_scan_bytes,
    saturation_rate,
    utilization,
)


@pytest.fixture(scope="module")
def cfg():
    return SystemConfig.paper_defaults().scaled(0.05)


class TestModel:
    def test_paper_anchor_untuned(self, cfg):
        # The calibration anchor: untuned saturation just below 4000.
        rate = saturation_rate(cfg.with_(fine_tuning=False), n_active=4)
        assert 3400 < rate < 3900

    def test_paper_anchor_tuned(self, cfg):
        rate = saturation_rate(cfg, n_active=4)
        assert 5500 < rate < 6500

    def test_capacity_scales_linearly(self, cfg):
        one = saturation_rate(cfg, 1)
        four = saturation_rate(cfg, 4)
        assert four == pytest.approx(4 * one, rel=0.15)

    def test_tuning_gains_capacity(self, cfg):
        table = capacity_table(cfg, max_slaves=4)
        for row in table:
            assert row["tuned_capacity"] >= row["untuned_capacity"]

    def test_slow_node_capacity(self, cfg):
        full = saturation_rate(cfg, 1, speed=1.0)
        half = saturation_rate(cfg, 1, speed=0.5)
        assert half < 0.7 * full

    def test_scan_bytes_clamped_by_tuning(self, cfg):
        untuned = mean_scan_bytes(cfg.with_(fine_tuning=False), 8000.0)
        tuned = mean_scan_bytes(cfg, 8000.0)
        assert tuned < untuned
        assert tuned <= 2 * cfg.theta_bytes


class TestTheoryMeetsSimulation:
    @pytest.mark.parametrize("n_active", [1, 2])
    def test_simulated_saturation_matches_prediction(self, cfg, n_active):
        predicted = saturation_rate(cfg, n_active)
        below = JoinSystem(
            cfg.with_(num_slaves=n_active, rate=0.8 * predicted)
        ).run()
        above = JoinSystem(
            cfg.with_(num_slaves=n_active, rate=1.3 * predicted)
        ).run()
        duration = below.duration
        # Below prediction: idle headroom.  Above: pinned at 100%.
        assert below.avg_idle_time > 0.05 * duration
        assert above.avg_idle_time < 0.05 * duration
        assert above.avg_delay > below.avg_delay

    def test_utilization_tracks_measured_cpu(self, cfg):
        rate, n = 2500.0, 4
        predicted = utilization(cfg, rate, n)
        result = JoinSystem(cfg.with_(num_slaves=n, rate=rate)).run()
        measured = result.avg_cpu_time / result.duration
        assert measured == pytest.approx(predicted, rel=0.25)
