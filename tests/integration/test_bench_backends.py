"""Smoke test for the backend benchmark's equal-work verification.

The benchmark only publishes a speedup after proving that sim, thread,
process and tcp performed identical join work (same ingested trace,
same joined-pair multiset).  This runs the real benchmark entry point
at a tiny rate: any cross-backend divergence — a reintroduced
gated-metric comparison, a backend losing trace tail tuples,
wire-codec corruption — fails here before it can reach a published
artifact.
"""

import json

from benchmarks.bench_backends import main


def test_benchmark_verifies_equal_work_across_backends(tmp_path):
    out = tmp_path / "bench.json"
    assert main(["--rate", "60", "--reps", "1", "--out", str(out)]) == 0

    report = json.loads(out.read_text())
    assert report["summary"]["equal_work_verified"] is True
    assert [run["backend"] for run in report["runs"]] == [
        "sim",
        "thread",
        "process",
        "tcp",
    ]
    assert report["summary"]["tcp_over_thread_speedup"] > 0
    assert report["summary"]["tcp_over_process_ratio"] > 0
    # Identical work: one outputs value, one ingested-tuple value, and
    # every backend ingested the complete trace.
    assert len({run["outputs"] for run in report["runs"]}) == 1
    assert len({run["tuples"] for run in report["runs"]}) == 1
    assert report["runs"][0]["tuples"] == report["trace_tuples"]
    assert report["runs"][0]["outputs"] > 0
    # The artifact must self-describe the host it was produced on.
    assert report["cores_available"] >= 1
    assert report["summary"]["multicore_capable"] == (
        report["cores_available"] > 1
    )
