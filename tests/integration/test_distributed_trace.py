"""Distributed trace collection across backends (the PR 6 tentpole).

The process backend forks one OS process per cluster node; each child
traces into a node-local tracer and ships batched records back over
its result pipe.  These tests pin the properties that make the merged
trace usable:

* **no blackout** — a traced process run contains events from *every*
  node id, master and collector included (regression: traces used to
  be rejected outright on wall backends);
* **crash survivability** — a SIGKILLed slave's pre-crash events
  survive (batches flush during the run), and the master's
  fault-detection / restore events appear in the same merged trace;
* **determinism** — the sim backend writes byte-identical JSONL traces
  for identical configs, and the merge function itself is a pure
  function of the records (exercised in tests/obs/test_exporters.py).
"""

import collections
import json

from repro.config import ObservabilityConfig, SystemConfig
from repro.core.cluster import COLLECTOR_ID, MASTER_ID, slave_node_id
from repro.core.system import JoinSystem


def _cfg(backend, **obs_kw):
    return (
        SystemConfig.paper_defaults()
        .scaled(0.02)
        .with_(
            backend=backend,
            time_scale=0.02,
            run_seconds=10.0,
            warmup_seconds=2.0,
            obs=ObservabilityConfig(sample_period=2.0, **obs_kw),
        )
    )


class TestProcessTraceCollection:
    def test_traced_process_run_covers_every_node(self):
        """Regression: the merged process-backend trace has events from
        every node id — no node is a blackout."""
        cfg = _cfg("process", trace_memory=True)
        result = JoinSystem(cfg).run()
        assert result.trace, "process backend returned an empty trace"
        nodes_seen = {record["node"] for record in result.trace}
        expected = {MASTER_ID, COLLECTOR_ID} | {
            slave_node_id(i) for i in range(cfg.num_slaves)
        }
        assert nodes_seen == expected

    def test_merged_trace_is_totally_ordered(self):
        cfg = _cfg("process", trace_memory=True)
        result = JoinSystem(cfg).run()
        keys = [
            (record["t"], record["node"], record.get("seq", -1))
            for record in result.trace
        ]
        assert keys == sorted(keys)
        # (t, node, seq) is unique per record: a total order, so the
        # merge is reproducible from the records alone.
        assert len(keys) == len(set(keys))

    def test_per_node_seq_is_contiguous(self):
        """Each node's tracer stamps 0..n-1 — shipping in batches over
        the pipe loses and reorders nothing."""
        cfg = _cfg("process", trace_memory=True)
        result = JoinSystem(cfg).run()
        per_node = collections.defaultdict(list)
        for record in result.trace:
            per_node[record["node"]].append(record["seq"])
        for node, seqs in per_node.items():
            assert sorted(seqs) == list(range(len(seqs))), (
                f"node {node} trace has gaps or duplicates"
            )

    def test_jsonl_sink_written_by_parent(self, tmp_path):
        path = str(tmp_path / "proc.jsonl")
        cfg = _cfg("process", trace_path=path)
        JoinSystem(cfg).run()
        with open(path, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert lines[0]["kind"] == "meta"
        nodes_seen = {r["node"] for r in lines[1:]}
        assert MASTER_ID in nodes_seen and COLLECTOR_ID in nodes_seen

    def test_transport_tracing_pairs_send_recv(self):
        cfg = _cfg("process", trace_memory=True, trace_transport=True)
        result = JoinSystem(cfg).run()
        transports = [r for r in result.trace if r["kind"] == "transport"]
        assert transports, "trace_transport produced no transport events"
        sends = {
            (r["node"], r["dst"], r["xfer_seq"])
            for r in transports
            if r["phase"] == "send"
        }
        recvs = {
            (r["dst"], r["node"], r["xfer_seq"])
            for r in transports
            if r["phase"] == "recv"
        }
        assert sends and recvs
        # On a clean run every receive pairs a send on its channel.
        assert recvs <= sends


class TestCrashTraceSurvivability:
    def test_victim_trace_survives_sigkill(self):
        """A crash-injected slave's pre-crash events are in the merged
        trace (batches flushed during the run), and the master's
        detection/recovery shows up alongside them."""
        from repro.faults.plan import FaultPlan

        victim = slave_node_id(1)
        cfg = (
            SystemConfig.paper_defaults()
            .scaled(0.01)
            .with_(
                backend="process",
                time_scale=0.05,
                num_slaves=3,
                npart=12,
                rate=400.0,
                run_seconds=16.0,
                warmup_seconds=2.0,
                replication="checkpoint+log",
                obs=ObservabilityConfig(trace_memory=True, sample_period=1.0),
                faults=FaultPlan.parse(("crash:1@6s",), detect_timeout=2.0),
            )
        )
        result = JoinSystem(cfg).run()
        assert result.trace
        victim_records = [r for r in result.trace if r["node"] == victim]
        assert victim_records, "SIGKILLed slave left no trace at all"
        assert max(r["t"] for r in victim_records) < cfg.run_seconds

        master_kinds = {
            r["kind"] for r in result.trace if r["node"] == MASTER_ID
        }
        assert "fault" in master_kinds, "master never traced the failure"
        assert "restore" in master_kinds or "recovery" in master_kinds
        assert not result.degraded  # replication made the crash lossless


class TestSimTraceDeterminism:
    def test_sim_jsonl_traces_are_byte_identical(self, tmp_path):
        """The DES backend's trace is a pure function of the config —
        two runs write byte-identical files (the strongest guarantee;
        wall-clock backends guarantee merge determinism instead, see
        DESIGN.md)."""
        paths = []
        for i in range(2):
            path = str(tmp_path / f"run{i}.jsonl")
            cfg = _cfg("sim", trace_path=path, trace_transport=True)
            JoinSystem(cfg).run()
            paths.append(path)
        with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
            assert a.read() == b.read()
