"""Cross-backend equivalence: the thread backend joins the exact same
pairs as the simulated backend (and the oracle) for a shared trace.

Timing-dependent metrics (delays, comm times) differ across backends by
construction; the *results* must not.
"""

import numpy as np
import pytest

from repro import JoinSystem, SystemConfig
from repro.core.cluster import build_cluster
from repro.net.thread_transport import ThreadTransport
from repro.reference import naive_window_join
from repro.runtime.thread import ThreadRuntime
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer


@pytest.fixture(scope="module")
def shared_setup():
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.01)
        .with_(
            num_slaves=2,
            npart=8,
            rate=150.0,
            run_seconds=10.0,
            warmup_seconds=2.0,
            window_seconds=3.0,
            reorg_epoch=4.0,
        )
    )
    wl = TwoStreamWorkload.poisson_bmodel(
        RngRegistry(5), cfg.rate, cfg.b_skew, 10_000
    )
    trace = wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)
    return cfg, trace


def sorted_pairs(chunks):
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.concatenate(chunks)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


class TestCrossBackend:
    def test_thread_backend_matches_sim_and_oracle(self, shared_setup):
        cfg, trace = shared_setup

        sim_result = JoinSystem(
            cfg, collect_pairs=True, workload=TraceReplayer(trace)
        ).run()
        sim_pairs = sorted_pairs([sim_result.pairs])

        # Run fast: 1 virtual second = 10 ms wall (100x speedup).
        runtime = ThreadRuntime(time_scale=0.01)
        transport = ThreadTransport(cfg.tuple_bytes, time_scale=0.01)
        cluster = build_cluster(
            cfg,
            runtime,
            transport,
            workload=TraceReplayer(trace),
            collect_pairs=True,
        )
        for name, gen in cluster.processes():
            runtime.spawn(gen, name=name)
        runtime.join_all(timeout=120.0)
        thread_pairs = sorted_pairs(
            [c for m in cluster.slave_metrics for c in m.pairs]
        )

        oracle = naive_window_join(trace, cfg.window_seconds)
        assert np.array_equal(sim_pairs, oracle)
        assert np.array_equal(thread_pairs, oracle)

    def test_thread_collector_consistency(self, shared_setup):
        cfg, trace = shared_setup
        runtime = ThreadRuntime(time_scale=0.01)
        transport = ThreadTransport(cfg.tuple_bytes, time_scale=0.01)
        cluster = build_cluster(
            cfg, runtime, transport, workload=TraceReplayer(trace)
        )
        for name, gen in cluster.processes():
            runtime.spawn(gen, name=name)
        runtime.join_all(timeout=120.0)
        local = sum(m.delays.count for m in cluster.slave_metrics)
        assert cluster.collector.delays.count == local
