"""Cross-backend conformance: every runtime backend — DES kernel,
threads, OS processes, TCP workers — joins the exact same pairs as the
oracle for a shared trace.

Timing-dependent metrics (delays, comm times) differ across backends by
construction; the *results* must not.
"""

import numpy as np
import pytest

from repro import JoinSystem, SystemConfig
from repro.core.cluster import build_cluster
from repro.errors import ConfigError
from repro.net.thread_transport import ThreadTransport
from repro.reference import naive_window_join
from repro.runtime.thread import ThreadRuntime
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer

#: Independent workloads for the four-way conformance sweep.
CONFORMANCE_SEEDS = (5, 11, 23)


@pytest.fixture(scope="module")
def shared_setup():
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.01)
        .with_(
            num_slaves=2,
            npart=8,
            rate=150.0,
            run_seconds=10.0,
            warmup_seconds=2.0,
            window_seconds=3.0,
            reorg_epoch=4.0,
        )
    )
    wl = TwoStreamWorkload.poisson_bmodel(
        RngRegistry(5), cfg.rate, cfg.b_skew, 10_000
    )
    trace = wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)
    return cfg, trace


def sorted_pairs(chunks):
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.concatenate(chunks)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


class TestCrossBackend:
    def test_thread_backend_matches_sim_and_oracle(self, shared_setup):
        cfg, trace = shared_setup

        sim_result = JoinSystem(
            cfg, collect_pairs=True, workload=TraceReplayer(trace)
        ).run()
        sim_pairs = sorted_pairs([sim_result.pairs])

        # Run fast: 1 virtual second = 10 ms wall (100x speedup).
        runtime = ThreadRuntime(time_scale=0.01)
        transport = ThreadTransport(cfg.tuple_bytes, time_scale=0.01)
        cluster = build_cluster(
            cfg,
            runtime,
            transport,
            workload=TraceReplayer(trace),
            collect_pairs=True,
        )
        for name, gen in cluster.processes():
            runtime.spawn(gen, name=name)
        runtime.join_all(timeout=120.0)
        thread_pairs = sorted_pairs(
            [c for m in cluster.slave_metrics for c in m.pair_chunks()]
        )

        oracle = naive_window_join(trace, cfg.window_seconds)
        assert np.array_equal(sim_pairs, oracle)
        assert np.array_equal(thread_pairs, oracle)

    def test_thread_collector_consistency(self, shared_setup):
        cfg, trace = shared_setup
        runtime = ThreadRuntime(time_scale=0.01)
        transport = ThreadTransport(cfg.tuple_bytes, time_scale=0.01)
        cluster = build_cluster(
            cfg, runtime, transport, workload=TraceReplayer(trace)
        )
        for name, gen in cluster.processes():
            runtime.spawn(gen, name=name)
        runtime.join_all(timeout=120.0)
        local = sum(m.delays.count for m in cluster.slave_metrics)
        assert cluster.collector.delays.count == local


class TestFourWayConformance:
    """sim, thread, process and tcp runs of the same trace must produce
    identical joined-output multisets — equal to each other and to the
    ``naive_window_join`` oracle — across several seeds."""

    @pytest.mark.parametrize("kernel", ["blocknlj", "indexed"])
    @pytest.mark.parametrize("seed", CONFORMANCE_SEEDS)
    def test_all_backends_match_each_other_and_oracle(self, seed, kernel):
        cfg = (
            SystemConfig.paper_defaults()
            .scaled(0.01)
            .with_(
                num_slaves=2,
                npart=8,
                rate=150.0,
                run_seconds=10.0,
                warmup_seconds=2.0,
                window_seconds=3.0,
                reorg_epoch=4.0,
                time_scale=0.02,
                kernel=kernel,
            )
        )
        wl = TwoStreamWorkload.poisson_bmodel(
            RngRegistry(seed), cfg.rate, cfg.b_skew, 10_000
        )
        trace = wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)
        oracle = naive_window_join(trace, cfg.window_seconds)
        assert len(oracle), "degenerate workload: oracle joined nothing"

        produced = {}
        for backend in ("sim", "thread", "process", "tcp"):
            result = JoinSystem(
                cfg.with_(backend=backend),
                collect_pairs=True,
                workload=TraceReplayer(trace),
            ).run()
            produced[backend] = sorted_pairs([result.pairs])

        for backend, pairs in produced.items():
            assert np.array_equal(pairs, oracle), (
                f"{backend} backend diverged from the oracle "
                f"({len(pairs)} vs {len(oracle)} pairs, seed {seed})"
            )
        assert np.array_equal(produced["sim"], produced["process"])
        assert np.array_equal(produced["sim"], produced["thread"])
        assert np.array_equal(produced["sim"], produced["tcp"])


class TestBackendSelection:
    def test_unknown_backend_lists_available(self):
        cfg = SystemConfig.paper_defaults().with_(backend="quantum")
        with pytest.raises(ConfigError, match="sim.*thread"):
            JoinSystem(cfg).run()

    def test_every_registered_backend_supports_observability(self):
        """All shipped backends declare the observability capability
        (wall backends trace since the distributed-trace plane)."""
        from repro.core.system import available_backends, get_backend

        for name in available_backends():
            assert getattr(get_backend(name), "supports_observability", False), (
                f"backend {name!r} does not declare supports_observability"
            )

    def test_backend_without_trace_shipping_is_rejected(self):
        """A backend that cannot ship traces must fail loudly, not
        silently swallow the requested observability plane."""
        from repro.config import ObservabilityConfig
        from repro.core.system import register_backend

        class _BlindBackend:
            name = "blind"

            def run(self, cfg, collect_pairs=False, workload=None):
                raise AssertionError("must be rejected before run()")

        register_backend("blind", _BlindBackend)
        try:
            cfg = SystemConfig.paper_defaults().with_(
                backend="blind", obs=ObservabilityConfig(trace_memory=True)
            )
            with pytest.raises(ConfigError, match="observability"):
                JoinSystem(cfg).run()
        finally:
            from repro.core.system import _BACKEND_FACTORIES

            _BACKEND_FACTORIES.pop("blind", None)

    def test_thread_backend_rejects_non_crash_faults(self):
        from repro.faults.plan import FaultPlan, parse_fault

        cfg = SystemConfig.paper_defaults().with_(
            backend="thread",
            faults=FaultPlan(messages=(parse_fault("drop:2->0@3"),)),
        )
        with pytest.raises(ConfigError, match="crash"):
            JoinSystem(cfg).run()

    def test_process_backend_rejects_non_crash_faults(self):
        from repro.faults.plan import FaultPlan, parse_fault

        cfg = SystemConfig.paper_defaults().with_(
            backend="process",
            faults=FaultPlan(messages=(parse_fault("drop:2->0@3"),)),
        )
        with pytest.raises(ConfigError, match="crash"):
            JoinSystem(cfg).run()

    def test_tcp_backend_rejects_non_crash_faults(self):
        from repro.faults.plan import FaultPlan, parse_fault

        cfg = SystemConfig.paper_defaults().with_(
            backend="tcp",
            faults=FaultPlan(messages=(parse_fault("drop:2->0@3"),)),
        )
        with pytest.raises(ConfigError, match="crash"):
            JoinSystem(cfg).run()

    def test_tcp_backend_rejects_crash_on_remote_node(self):
        # The launcher SIGKILLs crash victims, so a victim served by a
        # remote `swjoin worker` is out of reach — fail fast, before
        # any connection is attempted.
        from repro.faults.plan import FaultPlan, parse_fault

        cfg = SystemConfig.paper_defaults().with_(
            backend="tcp",
            tcp_peers=((2, "10.0.0.9:7000"),),  # slave 0 lives remotely
            faults=FaultPlan(crashes=(parse_fault("crash:0@5s"),)),
        )
        with pytest.raises(ConfigError, match="remote"):
            JoinSystem(cfg).run()

    def test_tcp_backend_rejects_peers_outside_the_cluster(self):
        cfg = SystemConfig.paper_defaults().with_(
            num_slaves=2,  # nodes 0..3
            backend="tcp",
            tcp_peers=((9, "10.0.0.9:7000"),),
        )
        with pytest.raises(ConfigError, match="outside this cluster"):
            JoinSystem(cfg).run()


class TestLosslessRecoveryConformance:
    """Crash + checkpoint+log replication on every backend: each one
    must restore the victim's partitions from the backup slave and
    produce the crash-free oracle's exact pair multiset, undegraded."""

    @pytest.mark.parametrize("kernel", ["blocknlj", "indexed"])
    @pytest.mark.parametrize("backend", ["sim", "thread", "process", "tcp"])
    def test_crash_with_replication_matches_oracle(self, backend, kernel):
        from repro.core.cluster import slave_node_id
        from repro.faults.plan import FaultPlan

        cfg = (
            SystemConfig.paper_defaults()
            .scaled(0.01)
            .with_(
                num_slaves=3,
                npart=12,
                rate=400.0,
                run_seconds=16.0,
                warmup_seconds=6.0,
                window_seconds=3.0,
                reorg_epoch=4.0,
                backend=backend,
                time_scale=0.05,
                replication="checkpoint+log",
                faults=FaultPlan.parse(["crash:1@5s"]),
                kernel=kernel,
            )
        )
        wl = TwoStreamWorkload.poisson_bmodel(
            RngRegistry(1), cfg.rate, cfg.b_skew, cfg.key_domain
        )
        trace = wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)
        oracle = naive_window_join(trace, cfg.window_seconds)
        assert len(oracle), "degenerate workload: oracle joined nothing"

        result = JoinSystem(
            cfg, collect_pairs=True, workload=TraceReplayer(trace)
        ).run()
        victim = slave_node_id(1)
        assert [f["slave"] for f in result.faults] == [victim]
        assert result.faults[0]["lost_pids"] == ()
        assert not result.degraded
        assert np.array_equal(sorted_pairs([result.pairs]), oracle)


class TestProcessFaults:
    def test_crash_fault_kills_process_and_master_recovers(self):
        # The victim's OS process is SIGKILLed at t=5; its peers see
        # socket EOF -> NodeDown, and the PR 3 detection/recovery path
        # runs unchanged: the master fences the dead slave and the run
        # completes degraded instead of wedging.
        from repro.core.cluster import slave_node_id
        from repro.faults.plan import FaultPlan, parse_fault

        cfg = (
            SystemConfig.paper_defaults()
            .scaled(0.01)
            .with_(
                num_slaves=3,
                npart=12,
                rate=150.0,
                run_seconds=12.0,
                warmup_seconds=2.0,
                window_seconds=3.0,
                reorg_epoch=4.0,
                backend="process",
                time_scale=0.05,
                faults=FaultPlan(crashes=(parse_fault("crash:1@5s"),)),
            )
        )
        result = JoinSystem(cfg).run()
        victim = slave_node_id(1)
        assert result.degraded
        assert result.injected_faults == [
            {"action": "crash", "node": victim, "t": 5.0, "info": 5.0}
        ]
        assert [f["slave"] for f in result.faults] == [victim]
        assert victim in result.master["dead_slaves"]
        # Every partition was reassigned off the dead slave.
        assert victim not in set(result.master["partition_owners"].values())
