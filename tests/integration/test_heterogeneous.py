"""Non-dedicated (heterogeneous) clusters: the paper's Section I
scenario — nodes shared with other applications, varying background
load — modeled through per-slave CPU speeds."""

import numpy as np
import pytest

from repro import JoinSystem, SystemConfig
from repro.config import CostModelConfig
from repro.core.costmodel import CostModel
from repro.errors import ConfigError
from repro.reference import naive_window_join
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer


class TestSpeedConfig:
    def test_speed_of_defaults_to_one(self):
        cfg = SystemConfig.paper_defaults()
        assert cfg.speed_of(0) == 1.0

    def test_speed_of_reads_tuple(self):
        cfg = SystemConfig.paper_defaults().with_(
            num_slaves=2, slave_speeds=(1.0, 0.5)
        )
        assert cfg.speed_of(1) == 0.5

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig.paper_defaults().with_(
                num_slaves=2, slave_speeds=(1.0,)
            )

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig.paper_defaults().with_(
                num_slaves=2, slave_speeds=(1.0, 0.0)
            )


class TestCostModelSpeed:
    def test_costs_scale_inversely_with_speed(self):
        cfg = CostModelConfig()
        fast = CostModel(cfg, speed=1.0)
        slow = CostModel(cfg, speed=0.5)
        assert slow.probe_cost(10, 1000) == pytest.approx(
            2 * fast.probe_cost(10, 1000)
        )
        assert slow.expire_cost(1000) == pytest.approx(
            2 * fast.expire_cost(1000)
        )
        assert slow.state_move_cost(1000) == pytest.approx(
            2 * fast.state_move_cost(1000)
        )

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            CostModel(CostModelConfig(), speed=0.0)


class TestHeterogeneousCluster:
    @pytest.fixture
    def het_cfg(self, tiny_cfg):
        # The slow slave (30% speed) is past saturation at this rate
        # while the fast slaves have ample headroom.
        return tiny_cfg.with_(
            num_slaves=3,
            rate=2000.0,
            slave_speeds=(1.0, 0.3, 1.0),
            run_seconds=24.0,
            warmup_seconds=6.0,
        )

    def test_slow_slave_becomes_supplier_and_sheds_load(self, het_cfg):
        result = JoinSystem(het_cfg).run()
        assert result.master["moves_ordered"] > 0
        # Classification saw a supplier at some reorganization.
        assert any(s > 0 for _, s, _, _ in result.master["supplier_counts"])

    def test_rebalancing_beats_static_placement(self, het_cfg):
        balanced = JoinSystem(het_cfg).run()
        static = JoinSystem(het_cfg.with_(load_balancing=False)).run()
        assert balanced.avg_delay <= static.avg_delay

    def test_results_remain_exact(self, het_cfg):
        wl = TwoStreamWorkload.poisson_bmodel(
            RngRegistry(21), het_cfg.rate, het_cfg.b_skew, het_cfg.key_domain
        )
        trace = wl.generate(0.0, het_cfg.run_seconds - 3 * het_cfg.dist_epoch)
        result = JoinSystem(
            het_cfg, collect_pairs=True, workload=TraceReplayer(trace)
        ).run()
        got = result.pairs
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        expected = naive_window_join(trace, het_cfg.window_seconds)
        assert np.array_equal(got, expected)

    def test_slow_slave_charges_more_cpu_per_tuple(self, het_cfg):
        result = JoinSystem(het_cfg.with_(load_balancing=False)).run()
        per_tuple = [
            s["cpu_total"] / max(s["tuples_processed"], 1)
            for s in result.slaves
        ]
        # Slave index 1 runs at 0.3 speed: ~3.3x the per-tuple time.
        assert per_tuple[1] > 2 * per_tuple[0]
