"""End-to-end observability: tracing a full simulated run.

Covers the acceptance criteria of the tracing layer:

* a traced adaptive run emits at least five distinct event kinds
  (epoch, reorg, split/merge, state_move, dod, ...);
* the JSONL exporter and ``swjoin report`` work end to end;
* tracing is *passive* — the same config produces bit-identical
  results with observability on and off;
* the trace and sampled series are threaded into ``RunResult``.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.config import ObservabilityConfig, SystemConfig
from repro.core.system import JoinSystem


def provocative_config(**obs_kwargs) -> SystemConfig:
    """A tiny config that exercises every adaptive mechanism: high
    rate + skew forces splits; starting with one active slave out of
    two forces DoD growth, state moves and reclassification."""
    cfg = SystemConfig.paper_defaults().scaled(0.02)
    return dataclasses.replace(
        cfg,
        rate=3500.0,
        num_slaves=2,
        npart=12,
        b_skew=0.8,
        adaptive_declustering=True,
        initial_active_slaves=1,
        obs=ObservabilityConfig(**obs_kwargs),
    )


@pytest.fixture(scope="module")
def traced_result():
    cfg = provocative_config(trace_memory=True, sample_period=1.0)
    return JoinSystem(cfg).run()


class TestTracedRun:
    def test_emits_at_least_five_distinct_kinds(self, traced_result):
        kinds = {record["kind"] for record in traced_result.trace}
        assert {"epoch", "dod", "reorg", "state_move", "classify"} <= kinds
        assert "split" in kinds or "merge" in kinds
        assert len(kinds) >= 5

    def test_records_are_json_serializable(self, traced_result):
        json.dumps(traced_result.trace)

    def test_timestamps_sane(self, traced_result):
        # Slaves keep draining backlog during shutdown, so slave-side
        # events may trail past run_seconds; master epoch markers are
        # exactly the epoch boundaries.
        cfg = traced_result.cfg
        for record in traced_result.trace:
            assert record["t"] >= 0.0
        epoch_times = [
            r["t"] for r in traced_result.trace if r["kind"] == "epoch"
        ]
        assert epoch_times == sorted(epoch_times)
        assert epoch_times[-1] <= cfg.run_seconds + 1e-6

    def test_series_threaded_into_result(self, traced_result):
        series = traced_result.series
        assert series is not None
        # Slaves are nodes 2+; the master contributes buffer_bytes.
        assert "n2.occupancy" in series
        assert "n0.buffer_bytes" in series
        points = series["n2.occupancy"]
        assert len(points) > 0
        assert all(t0 < t1 for (t0, _), (t1, _) in zip(points, points[1:]))

    def test_dod_growth_traced(self, traced_result):
        dod = [r for r in traced_result.trace if r["kind"] == "dod"]
        assert dod[0]["epoch"] == -1  # baseline record
        assert dod[0]["n_active"] == 1
        assert any(r["n_active"] == 2 for r in dod[1:])

    def test_state_moves_paired(self, traced_result):
        moves = [r for r in traced_result.trace if r["kind"] == "state_move"]
        begins = sum(1 for r in moves if r["phase"] == "begin")
        ends = sum(1 for r in moves if r["phase"] == "end")
        assert begins == ends > 0


class TestObservabilityIsPassive:
    def test_identical_results_with_tracing_on_and_off(self):
        base = JoinSystem(provocative_config()).run()
        traced = JoinSystem(
            provocative_config(trace_memory=True, sample_period=1.0)
        ).run()
        assert base.trace is None and base.series is None
        assert traced.outputs == base.outputs
        assert traced.avg_delay == base.avg_delay
        assert traced.delays.histogram.tolist() == base.delays.histogram.tolist()
        assert traced.cpu_times == base.cpu_times
        assert traced.comm_times == base.comm_times
        assert traced.dod_trace == base.dod_trace


class TestCliEndToEnd:
    def test_run_trace_then_report(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        code = main(
            [
                "run",
                "--scale", "0.02",
                "--rate", "3500",
                "--slaves", "2",
                "--npart", "12",
                "--b-skew", "0.8",
                "--adaptive",
                "--trace", trace,
            ]
        )
        assert code == 0
        assert "trace written" in capsys.readouterr().out

        with open(trace, encoding="utf-8") as fh:
            header = json.loads(fh.readline())
        assert header["kind"] == "meta"
        assert header["config"]["slaves"] == 2

        assert main(["report", trace]) == 0
        out = capsys.readouterr().out
        assert "epoch timeline" in out
        assert "phase" in out  # the timeline table rendered
        assert "hot partitions" in out

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_plot_gauge(self, capsys):
        code = main(
            [
                "run",
                "--scale", "0.01",
                "--rate", "300",
                "--slaves", "2",
                "--npart", "12",
                "--plot-gauge", "occupancy",
            ]
        )
        assert code == 0
        assert "gauge: occupancy" in capsys.readouterr().out

    def test_trace_transport_flag(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        cfg = provocative_config(trace_path=None)
        code = main(
            [
                "run",
                "--scale", "0.01",
                "--rate", "300",
                "--slaves", "2",
                "--npart", "12",
                "--trace", trace,
                "--trace-transport",
            ]
        )
        assert code == 0
        with open(trace, encoding="utf-8") as fh:
            kinds = {json.loads(line)["kind"] for line in fh}
        assert "transport" in kinds


class TestDisabledOverhead:
    def test_null_tracer_shared_and_disabled(self):
        from repro.obs.tracer import NULL_TRACER

        result = JoinSystem(provocative_config()).run()
        assert result.trace is None
        assert NULL_TRACER.n_events == 0
