"""Wire-level protocol sequences: the fixed communication schedule.

These tests tap the simulated transport and assert the *order* of
messages on the wire matches the paper's protocol: slot-ordered
distribution (Section V-B), and the reorganization sequence of
Section IV-C (orders -> ship to non-participants -> state transfer ->
acks -> ship to participants).
"""

import pytest

from repro import JoinSystem, SystemConfig
from repro.core.protocol import (
    Activate,
    MoveAck,
    ReorgOrder,
    Shipment,
    StateTransfer,
)
from repro.net import sim_transport


@pytest.fixture
def wire_log(monkeypatch):
    """Record every transfer as (time, src, dst, message)."""
    log = []
    original = sim_transport.SimTransport._transfer

    def tap(self, send, recv):
        # Peek the pair from the pending entries before matching.
        log.append((self.sim.now, send.message))
        return original(self, send, recv)

    monkeypatch.setattr(sim_transport.SimTransport, "_transfer", tap)
    return log


def messages_of(log, *types):
    return [(t, m) for t, m in log if isinstance(m, types)]


class TestSlotOrdering:
    def test_two_subgroups_ship_in_separate_slots(self, tiny_cfg, wire_log):
        cfg = tiny_cfg.with_(num_slaves=4, num_subgroups=2)
        JoinSystem(cfg).run()
        shipments = messages_of(wire_log, Shipment)
        # Group shipments per epoch boundary and check the intra-epoch
        # spread spans about half an epoch (the slot offset).
        by_epoch: dict[int, list[float]] = {}
        for t, m in shipments:
            by_epoch.setdefault(m.epoch, []).append(t)
        spread = [
            max(times) - min(times)
            for times in by_epoch.values()
            if len(times) == 4
        ]
        slot = cfg.dist_epoch / 2
        assert spread, "no full epochs observed"
        assert sum(s >= 0.9 * slot for s in spread) > len(spread) / 2

    def test_single_group_ships_back_to_back(self, tiny_cfg, wire_log):
        cfg = tiny_cfg.with_(num_slaves=4, num_subgroups=1)
        JoinSystem(cfg).run()
        shipments = messages_of(wire_log, Shipment)
        by_epoch: dict[int, list[float]] = {}
        for t, m in shipments:
            by_epoch.setdefault(m.epoch, []).append(t)
        spread = [
            max(times) - min(times)
            for times in by_epoch.values()
            if len(times) == 4
        ]
        # Serial sends take only the per-message service time, far
        # below half an epoch.
        assert spread
        assert max(spread) < 0.5 * cfg.dist_epoch


class TestReorgSequence:
    def _run_with_moves(self, tiny_cfg, wire_log):
        # Skewed keys over a small domain make partition loads uneven:
        # one slave turns supplier while another stays consumer.
        cfg = tiny_cfg.with_(
            num_slaves=3,
            rate=2500.0,
            b_skew=0.9,
            key_domain=1000,
            th_sup=0.05,
            th_con=0.02,
        )
        result = JoinSystem(cfg).run()
        assert result.master["moves_ordered"] > 0
        return cfg

    def test_state_moves_happen(self, tiny_cfg, wire_log):
        self._run_with_moves(tiny_cfg, wire_log)
        assert messages_of(wire_log, StateTransfer)

    def test_order_before_transfer_before_ack(self, tiny_cfg, wire_log):
        self._run_with_moves(tiny_cfg, wire_log)
        transfers = messages_of(wire_log, StateTransfer)
        first_transfer = transfers[0][0]
        orders_before = [
            t
            for t, m in messages_of(wire_log, ReorgOrder)
            if t <= first_transfer and (m.outgoing or m.incoming)
        ]
        assert orders_before, "a move-bearing ReorgOrder precedes transfers"
        acks = messages_of(wire_log, MoveAck)
        assert acks
        assert min(t for t, _ in acks) >= first_transfer

    def test_participants_shipped_after_acks(self, tiny_cfg, wire_log):
        self._run_with_moves(tiny_cfg, wire_log)
        # Find the first reorg with a transfer, then the shipments of
        # that epoch: at least one must come after the last ack of the
        # epoch (the participant's) while non-participants may precede.
        transfers = messages_of(wire_log, StateTransfer)
        t0 = transfers[0][0]
        acks = [t for t, _ in messages_of(wire_log, MoveAck) if t >= t0]
        first_ack = min(acks)
        window = [
            (t, m)
            for t, m in messages_of(wire_log, Shipment)
            if t0 - 1.0 <= t <= first_ack + 2.0
        ]
        assert any(t > first_ack for t, _ in window)


class TestActivation:
    def test_activate_message_on_growth(self, tiny_cfg, wire_log):
        cfg = tiny_cfg.with_(
            num_slaves=3,
            rate=2500.0,
            adaptive_declustering=True,
            initial_active_slaves=1,
            run_seconds=24.0,
            warmup_seconds=6.0,
        )
        result = JoinSystem(cfg).run()
        assert result.final_active_slaves > 1
        activations = messages_of(wire_log, Activate)
        assert activations
        # The activated slave receives its slot schedule.
        for _, msg in activations:
            assert msg.schedule is not None
