"""The headline correctness property: the full parallel pipeline
produces exactly the naive sliding-window join's output pairs —
including under hash partitioning, head-block batching, fine-tuning
splits/merges, supplier->consumer state moves and adaptive degree of
declustering."""

import numpy as np
import pytest

from repro import JoinSystem, SystemConfig
from repro.core.hashing import partition_of
from repro.core.system import slave_node_id
from repro.faults.plan import FaultPlan
from repro.reference import naive_window_join
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer


def closed_trace(cfg, seed):
    """A workload trace ending a few epochs before the run does, so
    every tuple is distributed and joined before shutdown."""
    rng = RngRegistry(seed)
    wl = TwoStreamWorkload.poisson_bmodel(
        rng, cfg.rate, cfg.b_skew, cfg.key_domain
    )
    return wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)


def run_and_compare(cfg, seed=1):
    trace = closed_trace(cfg, seed)
    result = JoinSystem(
        cfg, collect_pairs=True, workload=TraceReplayer(trace)
    ).run()
    got = result.pairs
    got = got[np.lexsort((got[:, 1], got[:, 0]))]
    expected = naive_window_join(trace, cfg.window_seconds)
    return got, expected, result


@pytest.fixture
def base_cfg(tiny_cfg):
    return tiny_cfg


class TestOracleEquivalence:
    def test_two_slaves(self, base_cfg):
        got, expected, _ = run_and_compare(base_cfg)
        assert np.array_equal(got, expected)
        assert len(expected) > 0  # non-vacuous

    def test_four_slaves_with_moves(self, base_cfg):
        cfg = base_cfg.with_(num_slaves=4, rate=800.0)
        got, expected, result = run_and_compare(cfg, seed=2)
        assert np.array_equal(got, expected)

    def test_adaptive_declustering(self, base_cfg):
        cfg = base_cfg.with_(
            num_slaves=4,
            rate=600.0,
            adaptive_declustering=True,
            run_seconds=24.0,
            warmup_seconds=6.0,
        )
        got, expected, result = run_and_compare(cfg, seed=3)
        assert np.array_equal(got, expected)

    def test_growth_from_single_slave(self, base_cfg):
        cfg = base_cfg.with_(
            num_slaves=3,
            rate=3000.0,
            adaptive_declustering=True,
            initial_active_slaves=1,
            run_seconds=24.0,
            warmup_seconds=6.0,
        )
        got, expected, result = run_and_compare(cfg, seed=4)
        assert result.final_active_slaves > 1  # growth actually happened
        assert np.array_equal(got, expected)

    def test_no_fine_tuning(self, base_cfg):
        got, expected, _ = run_and_compare(
            base_cfg.with_(fine_tuning=False), seed=5
        )
        assert np.array_equal(got, expected)

    def test_subgroups(self, base_cfg):
        cfg = base_cfg.with_(num_slaves=4, num_subgroups=2, rate=700.0)
        got, expected, _ = run_and_compare(cfg, seed=6)
        assert np.array_equal(got, expected)

    def test_skewed_keys(self, base_cfg):
        cfg = base_cfg.with_(b_skew=0.9, key_domain=5000, rate=500.0)
        got, expected, _ = run_and_compare(cfg, seed=7)
        assert len(expected) > 1000  # heavy skew means many matches
        assert np.array_equal(got, expected)

    def test_overloaded_system_still_exact(self, base_cfg):
        """Backlog changes timing, never results: even saturated, every
        shipped tuple is eventually joined exactly once."""
        cfg = base_cfg.with_(num_slaves=1, rate=2500.0)
        got, expected, result = run_and_compare(cfg, seed=8)
        assert np.array_equal(got, expected)

    def test_short_epochs(self, base_cfg):
        cfg = base_cfg.with_(dist_epoch=0.5, reorg_epoch=2.0, rate=600.0)
        got, expected, _ = run_and_compare(cfg, seed=9)
        assert np.array_equal(got, expected)


def pair_partitions(trace, pairs, npart):
    """Partition id of each output pair (via its stream-0 tuple's key)."""
    s0 = trace.stream == 0
    key_by_seq = np.zeros(int(trace.seq[s0].max()) + 1, dtype=trace.key.dtype)
    key_by_seq[trace.seq[s0]] = trace.key[s0]
    return partition_of(key_by_seq[pairs[:, 0]], npart)


class TestDegradedOracle:
    """Failure semantics: a crash loses only the dead slave's window
    state.  Output restricted to partitions that never lived on the
    victim must still match the naive oracle exactly, and nothing the
    degraded run produces may be spurious."""

    def test_surviving_partitions_stay_exact_under_crash(self, base_cfg):
        cfg = base_cfg.with_(
            num_slaves=3,
            run_seconds=18.0,
            # Keep partition placement static so "never lived on the
            # victim" is exactly the complement of the lost pids.
            load_balancing=False,
            faults=FaultPlan.parse(["crash:1@7s"]),
        )
        trace = closed_trace(cfg, seed=11)
        result = JoinSystem(
            cfg, collect_pairs=True, workload=TraceReplayer(trace)
        ).run()
        assert result.degraded
        assert result.faults[0]["slave"] == slave_node_id(1)
        lost_pids = sorted(result.faults[0]["pids"])
        assert lost_pids  # the victim owned state when it died

        got = result.pairs
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        expected = naive_window_join(trace, cfg.window_seconds)

        # No spurious output: every produced pair is a true join result.
        got_set = set(map(tuple, got.tolist()))
        expected_set = set(map(tuple, expected.tolist()))
        assert got_set <= expected_set
        # The lost window state cost actual output (non-vacuous).
        assert len(got) < len(expected)

        # Surviving partitions are exact.
        exp_surviving = expected[
            ~np.isin(pair_partitions(trace, expected, cfg.npart), lost_pids)
        ]
        got_surviving = got[
            ~np.isin(pair_partitions(trace, got, cfg.npart), lost_pids)
        ]
        assert len(exp_surviving) > 0
        assert np.array_equal(got_surviving, exp_surviving)
