"""The headline correctness property: the full parallel pipeline
produces exactly the naive sliding-window join's output pairs —
including under hash partitioning, head-block batching, fine-tuning
splits/merges, supplier->consumer state moves and adaptive degree of
declustering."""

import numpy as np
import pytest

from repro import JoinSystem, SystemConfig
from repro.reference import naive_window_join
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer


def closed_trace(cfg, seed):
    """A workload trace ending a few epochs before the run does, so
    every tuple is distributed and joined before shutdown."""
    rng = RngRegistry(seed)
    wl = TwoStreamWorkload.poisson_bmodel(
        rng, cfg.rate, cfg.b_skew, cfg.key_domain
    )
    return wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)


def run_and_compare(cfg, seed=1):
    trace = closed_trace(cfg, seed)
    result = JoinSystem(
        cfg, collect_pairs=True, workload=TraceReplayer(trace)
    ).run()
    got = result.pairs
    got = got[np.lexsort((got[:, 1], got[:, 0]))]
    expected = naive_window_join(trace, cfg.window_seconds)
    return got, expected, result


@pytest.fixture
def base_cfg(tiny_cfg):
    return tiny_cfg


class TestOracleEquivalence:
    def test_two_slaves(self, base_cfg):
        got, expected, _ = run_and_compare(base_cfg)
        assert np.array_equal(got, expected)
        assert len(expected) > 0  # non-vacuous

    def test_four_slaves_with_moves(self, base_cfg):
        cfg = base_cfg.with_(num_slaves=4, rate=800.0)
        got, expected, result = run_and_compare(cfg, seed=2)
        assert np.array_equal(got, expected)

    def test_adaptive_declustering(self, base_cfg):
        cfg = base_cfg.with_(
            num_slaves=4,
            rate=600.0,
            adaptive_declustering=True,
            run_seconds=24.0,
            warmup_seconds=6.0,
        )
        got, expected, result = run_and_compare(cfg, seed=3)
        assert np.array_equal(got, expected)

    def test_growth_from_single_slave(self, base_cfg):
        cfg = base_cfg.with_(
            num_slaves=3,
            rate=3000.0,
            adaptive_declustering=True,
            initial_active_slaves=1,
            run_seconds=24.0,
            warmup_seconds=6.0,
        )
        got, expected, result = run_and_compare(cfg, seed=4)
        assert result.final_active_slaves > 1  # growth actually happened
        assert np.array_equal(got, expected)

    def test_no_fine_tuning(self, base_cfg):
        got, expected, _ = run_and_compare(
            base_cfg.with_(fine_tuning=False), seed=5
        )
        assert np.array_equal(got, expected)

    def test_subgroups(self, base_cfg):
        cfg = base_cfg.with_(num_slaves=4, num_subgroups=2, rate=700.0)
        got, expected, _ = run_and_compare(cfg, seed=6)
        assert np.array_equal(got, expected)

    def test_skewed_keys(self, base_cfg):
        cfg = base_cfg.with_(b_skew=0.9, key_domain=5000, rate=500.0)
        got, expected, _ = run_and_compare(cfg, seed=7)
        assert len(expected) > 1000  # heavy skew means many matches
        assert np.array_equal(got, expected)

    def test_overloaded_system_still_exact(self, base_cfg):
        """Backlog changes timing, never results: even saturated, every
        shipped tuple is eventually joined exactly once."""
        cfg = base_cfg.with_(num_slaves=1, rate=2500.0)
        got, expected, result = run_and_compare(cfg, seed=8)
        assert np.array_equal(got, expected)

    def test_short_epochs(self, base_cfg):
        cfg = base_cfg.with_(dist_epoch=0.5, reorg_epoch=2.0, rate=600.0)
        got, expected, _ = run_and_compare(cfg, seed=9)
        assert np.array_equal(got, expected)
