"""Baselines: exactness and the qualitative claims of Section VII."""

import numpy as np
import pytest

from repro import JoinSystem, SystemConfig
from repro.baselines import (
    AtrSystem,
    CentralizedJoin,
    CtrSystem,
    no_fine_tuning,
    non_adaptive,
    static_partitioning,
)
from repro.errors import ConfigError
from repro.reference import naive_window_join
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer


@pytest.fixture
def cfg(tiny_cfg):
    return tiny_cfg.with_(num_slaves=3, rate=500.0)


def closed_trace(cfg, seed=11):
    wl = TwoStreamWorkload.poisson_bmodel(
        RngRegistry(seed), cfg.rate, cfg.b_skew, cfg.key_domain
    )
    return wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)


class TestVariantHelpers:
    def test_no_fine_tuning(self, cfg):
        assert no_fine_tuning(cfg).fine_tuning is False

    def test_static_partitioning(self, cfg):
        assert static_partitioning(cfg).load_balancing is False

    def test_non_adaptive(self, cfg):
        assert non_adaptive(cfg).adaptive_declustering is False


class TestAtr:
    def test_oracle_exact(self, cfg):
        trace = closed_trace(cfg)
        result = AtrSystem(
            cfg, workload=TraceReplayer(trace), collect_pairs=True
        ).run()
        got = result.pairs
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        expected = naive_window_join(trace, cfg.window_seconds)
        assert np.array_equal(got, expected)

    def test_oracle_exact_single_node(self, cfg):
        trace = closed_trace(cfg, seed=12)
        result = AtrSystem(
            cfg.with_(num_slaves=1),
            workload=TraceReplayer(trace),
            collect_pairs=True,
        ).run()
        got = result.pairs
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        assert np.array_equal(
            got, naive_window_join(trace, cfg.window_seconds)
        )

    def test_concentrates_whole_window_on_one_node(self, cfg):
        """The paper's criticism: the segment node holds ~the complete
        two-stream window, so ATR's per-node window is ~N times ours."""
        atr = AtrSystem(cfg).run()
        ours = JoinSystem(cfg).run()
        assert atr.max_window_bytes > 1.5 * ours.max_window_bytes

    def test_segment_shorter_than_window_rejected(self, cfg):
        with pytest.raises(ConfigError):
            AtrSystem(cfg, segment_seconds=cfg.window_seconds / 2).run()


class TestCtr:
    def test_oracle_exact(self, cfg):
        trace = closed_trace(cfg, seed=13)
        result = CtrSystem(
            cfg, workload=TraceReplayer(trace), collect_pairs=True
        ).run()
        got = result.pairs
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        assert np.array_equal(
            got, naive_window_join(trace, cfg.window_seconds)
        )

    def test_network_overhead_scales_with_nodes(self, cfg):
        """Every tuple is forwarded to every node: CTR moves ~N times
        the payload bytes our hash-partitioned distribution moves."""
        ctr = CtrSystem(cfg).run()
        ours = JoinSystem(cfg).run()
        ctr_bytes = sum(s["bytes_received"] for s in ctr.slaves)
        ours_bytes = sum(s["bytes_received"] for s in ours.slaves)
        assert ctr_bytes > 2.0 * ours_bytes

    def test_per_node_fixed_cpu_does_not_divide(self, cfg):
        """CTR charges the fixed per-tuple work on all N nodes."""
        ctr = CtrSystem(cfg).run()
        total_input = ctr.tuples_generated
        per_node = [s["tuples_processed"] for s in ctr.slaves]
        for n in per_node:
            assert n >= 0.8 * total_input  # everyone sees ~everything


class TestCentralized:
    def test_produces_outputs(self, cfg):
        result = CentralizedJoin(cfg).run()
        assert result.outputs > 0
        assert 0.0 < result.utilization

    def test_saturates_beyond_single_node_capacity(self, cfg):
        light = CentralizedJoin(cfg.with_(rate=300.0)).run()
        heavy = CentralizedJoin(cfg.with_(rate=4000.0)).run()
        assert light.utilization < 1.0
        assert heavy.utilization == pytest.approx(1.0, abs=0.05)
        assert heavy.avg_delay > 3 * light.avg_delay

    def test_cluster_beats_centralized_under_load(self, cfg):
        rate = 2500.0
        central = CentralizedJoin(cfg.with_(rate=rate)).run()
        cluster = JoinSystem(cfg.with_(rate=rate, num_slaves=3)).run()
        assert cluster.avg_delay < central.avg_delay
