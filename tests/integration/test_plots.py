"""ASCII chart rendering."""

from repro.analysis.plots import ascii_plot, plot_experiment
from repro.analysis.series import Experiment


class TestAsciiPlot:
    def test_basic_render(self):
        chart = ascii_plot(
            {"line": [(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)]},
            width=20,
            height=8,
            x_label="x",
        )
        assert "o" in chart
        assert "└" in chart
        assert "o = line" in chart

    def test_multiple_series_get_distinct_marks(self):
        chart = ascii_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=10,
            height=5,
        )
        assert "o = a" in chart
        assert "x = b" in chart

    def test_empty(self):
        assert ascii_plot({}) == "(no data)"

    def test_degenerate_ranges(self):
        chart = ascii_plot({"p": [(1.0, 2.0)]}, width=10, height=4)
        assert "o" in chart

    def test_axis_labels_show_extremes(self):
        chart = ascii_plot(
            {"s": [(10.0, 5.0), (90.0, 25.0)]}, width=30, height=6
        )
        assert "10" in chart
        assert "90" in chart
        assert "25" in chart


class TestPlotExperiment:
    def test_plain_experiment(self):
        exp = Experiment("x", "t", "e", ["rate", "delay"])
        exp.add(rate=1000, delay=1.0)
        exp.add(rate=2000, delay=2.0)
        chart = plot_experiment(exp)
        assert "rate" in chart

    def test_grouped_experiment(self):
        exp = Experiment("x", "t", "e", ["rate", "slaves", "delay"])
        for n in (1, 2):
            for rate in (1000, 2000):
                exp.add(rate=rate, slaves=n, delay=rate / 1000 / n)
        chart = plot_experiment(exp)
        assert "slaves=1" in chart
        assert "slaves=2" in chart

    def test_empty_experiment(self):
        exp = Experiment("x", "t", "e", ["a"])
        assert plot_experiment(exp) == "(no data)"

    def test_infinite_x_skipped(self):
        exp = Experiment("x", "t", "e", ["mem", "delay"])
        exp.add(mem=float("inf"), delay=1.0)
        exp.add(mem=0.5, delay=2.0)
        exp.add(mem=0.25, delay=3.0)
        chart = plot_experiment(exp)
        assert "(no data)" not in chart
