"""Smoke test for the kernel matrix's equal-work verification.

The kernel benchmark only publishes a speedup after proving that every
registered kernel produced the identical joined-pair multiset over the
identical probe stream, and that end-to-end runs reproduce the naive
oracle on the sim and thread backends.  Running the real entry point
at a small iteration count means any kernel divergence — a stale
index, a broken lazy-expiry floor, a boundary off-by-one — fails here
before it can reach a published artifact.
"""

import json

from benchmarks.bench_kernels import main


def test_benchmark_verifies_equal_work_across_kernels(tmp_path):
    out = tmp_path / "bench.json"
    assert main(["--iters", "20", "--out", str(out)]) == 0

    report = json.loads(out.read_text())
    assert report["verified"] is True
    kernels = {cell["kernel"] for cell in report["cells"]}
    assert kernels == {"blocknlj", "indexed"}
    # Equal work per window size: one pair count shared by all kernels.
    by_size: dict[int, set[int]] = {}
    for cell in report["cells"]:
        assert "DIVERGED" not in cell
        assert cell["pairs"] > 0
        by_size.setdefault(cell["window_tuples"], set()).add(cell["pairs"])
    for size, counts in by_size.items():
        assert len(counts) == 1, f"unequal pair counts at {size}: {counts}"
    # End-to-end conformance ran and matched the oracle everywhere.
    e2e = report["end_to_end"]
    assert e2e["oracle_pairs"] > 0
    assert all(
        v == "oracle-exact"
        for k, v in e2e.items()
        if k != "oracle_pairs"
    )
    assert set(report["indexed_over_blocknlj_speedup"]) == {"10000", "100000"}
