"""Chaos matrix: crash one slave at adversarial times, across seeds.

The seed base can be shifted from the environment (``CHAOS_SEED_BASE``)
so CI can sweep disjoint seed windows without editing the suite.  Every
scenario is fully deterministic: a (seed, FaultPlan) pair names one
exact execution.
"""

import os

import pytest

from repro.config import SystemConfig
from repro.core.system import JoinSystem, slave_node_id
from repro.faults.plan import FaultPlan

SEEDS = [int(os.environ.get("CHAOS_SEED_BASE", "1")) + i for i in range(5)]

#: Crash times chosen against the control-plane schedule of the chaos
#: config (dist_epoch=2, reorg_epoch=4): before the first shipment,
#: mid-epoch, just inside a reorg exchange (state transfers in flight),
#: and right after a plain distribution boundary.
CRASH_TIMES = {
    "before-first-shipment": 1.0,
    "during-reorg": 4.02,
    "mid-epoch": 5.0,
    "after-boundary": 8.05,
}


def chaos_cfg(seed: int, **overrides) -> SystemConfig:
    base = dict(
        npart=12,
        rate=400.0,
        num_slaves=3,
        run_seconds=16.0,
        warmup_seconds=6.0,
        window_seconds=3.0,
        reorg_epoch=4.0,
        seed=seed,
    )
    base.update(overrides)
    return SystemConfig.paper_defaults().scaled(0.01).with_(**base)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "when", sorted(CRASH_TIMES), ids=sorted(CRASH_TIMES)
)
def test_crash_sweep_recovers(seed, when):
    """One slave dies; the run completes degraded, survivors adopt
    every lost partition, and the failure is fully accounted for."""
    crash_at = CRASH_TIMES[when]
    victim_index = 1
    victim = slave_node_id(victim_index)
    cfg = chaos_cfg(
        seed, faults=FaultPlan.parse([f"crash:{victim_index}@{crash_at}s"])
    )

    result = JoinSystem(cfg).run()  # must not raise DeadlockError

    # The crash actually fired and was detected.
    assert [r["action"] for r in result.injected_faults] == ["crash"]
    assert result.injected_faults[0]["node"] == victim
    assert result.degraded
    assert [f["slave"] for f in result.faults] == [victim]
    fault = result.faults[0]
    assert fault["detected_at"] >= crash_at

    # Recovery ran: detection-to-reassignment latency is recorded and
    # the dead slave's partitions were adopted by survivors.
    assert fault["recovery_latency"] is not None
    assert fault["recovery_latency"] >= 0.0
    assert result.recovery_latencies == [fault["recovery_latency"]]
    owners = result.master["partition_owners"]
    assert sorted(owners) == list(range(cfg.npart))
    survivors = {slave_node_id(i) for i in range(cfg.num_slaves)} - {victim}
    assert set(owners.values()) <= survivors
    assert result.master["dead_slaves"] == [victim]

    # Survivors kept producing output after the failure.
    assert result.outputs > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_of_two_slaves_still_completes(seed):
    """Cascading failures: a second crash while the first recovery is
    settling; the single survivor ends up owning every partition."""
    cfg = chaos_cfg(
        seed, faults=FaultPlan.parse(["crash:0@5s", "crash:2@7.5s"])
    )
    result = JoinSystem(cfg).run()
    dead = {slave_node_id(0), slave_node_id(2)}
    assert result.degraded
    assert {f["slave"] for f in result.faults} == dead
    owners = result.master["partition_owners"]
    assert sorted(owners) == list(range(cfg.npart))
    assert set(owners.values()) == {slave_node_id(1)}


def test_crash_at_reorg_boundary_saturated_no_false_positive():
    """Regression: a crash landing exactly on a reorg boundary, on a
    saturated adaptive config, must yield exactly one failure record.

    The adopting survivor's join loop holds the partition lock for a
    whole bounded pass (~one dist_epoch of CPU at saturation), so if
    adoption acks queued behind it the master's ack timeout would
    declare the busy-but-live survivor dead too.  Acks for adopted
    partitions are therefore sent before the lock-protected installs.
    """
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.02)
        .with_(
            rate=3500.0,
            num_slaves=2,
            b_skew=0.8,
            npart=12,
            adaptive_declustering=True,
            faults=FaultPlan.parse(["crash:1@20s"]),
        )
    )
    result = JoinSystem(cfg).run()
    victim = slave_node_id(1)
    survivor = slave_node_id(0)
    assert result.degraded
    assert [f["slave"] for f in result.faults] == [victim]
    assert result.master["dead_slaves"] == [victim]
    assert result.faults[0]["recovery_latency"] is not None
    owners = result.master["partition_owners"]
    assert sorted(owners) == list(range(cfg.npart))
    assert set(owners.values()) == {survivor}
    assert result.outputs > 0


def test_crash_near_run_end_stays_unrecovered_but_completes():
    """A failure with no epoch left to recover in still terminates
    cleanly — degraded, with the failure recorded as unrecovered."""
    cfg = chaos_cfg(SEEDS[0], faults=FaultPlan.parse(["crash:1@13.9s"]))
    result = JoinSystem(cfg).run()
    assert result.degraded
    assert result.faults[0]["recovery_latency"] is None
    assert result.recovery_latencies == []
