"""Lossless recovery matrix: with state replication on, a mid-run
slave crash must not cost a single output pair.

Every scenario compares the recovered run against the *unrestricted*
crash-free ``naive_window_join`` oracle over a closed trace — if any
window state, buffered tuple, or already-produced pair died with the
victim, the multisets differ and the test fails.  Contrast with
``test_chaos.py``, whose replication-off scenarios only assert degraded
completion.
"""

import os

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.system import JoinSystem, slave_node_id
from repro.faults.plan import FaultPlan
from repro.reference import naive_window_join
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer

SEEDS = [int(os.environ.get("CHAOS_SEED_BASE", "1")) + i for i in range(5)]

#: Same adversarial placements as the chaos suite (dist_epoch=2,
#: reorg_epoch=4): before any shipment reached the victim, inside a
#: reorg exchange, mid-epoch, and right after a plain boundary.
CRASH_TIMES = {
    "before-first-shipment": 1.0,
    "during-reorg": 4.02,
    "mid-epoch": 5.0,
    "after-boundary": 8.05,
}


def lossless_cfg(seed: int, **overrides) -> SystemConfig:
    base = dict(
        npart=12,
        rate=400.0,
        num_slaves=3,
        run_seconds=16.0,
        warmup_seconds=6.0,
        window_seconds=3.0,
        reorg_epoch=4.0,
        seed=seed,
        replication="checkpoint+log",
    )
    base.update(overrides)
    return SystemConfig.paper_defaults().scaled(0.01).with_(**base)


def closed_trace(cfg, seed):
    rng = RngRegistry(seed)
    wl = TwoStreamWorkload.poisson_bmodel(
        rng, cfg.rate, cfg.b_skew, cfg.key_domain
    )
    return wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)


def run_with_trace(cfg, trace):
    return JoinSystem(
        cfg, collect_pairs=True, workload=TraceReplayer(trace)
    ).run()


def sorted_pairs(pairs):
    if pairs is None or not len(pairs):
        return np.empty((0, 2), dtype=np.int64)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


@pytest.mark.parametrize("kernel", ["blocknlj", "indexed"])
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("when", sorted(CRASH_TIMES), ids=sorted(CRASH_TIMES))
def test_checkpoint_log_crash_is_lossless(seed, when, kernel):
    """checkpoint+log replication: crash -> restore at the backup ->
    output multiset identical to the crash-free oracle, not degraded.

    The kernel column proves index state is safely *derived*: with the
    ``indexed`` kernel the victim dies holding live hash indexes, the
    backup restores window contents only, and the rebuilt indexes must
    reproduce the crash-free oracle bit for bit."""
    cfg = lossless_cfg(
        seed,
        kernel=kernel,
        faults=FaultPlan.parse([f"crash:1@{CRASH_TIMES[when]}s"]),
    )
    trace = closed_trace(cfg, seed)
    result = run_with_trace(cfg, trace)

    victim = slave_node_id(1)
    assert [f["slave"] for f in result.faults] == [victim]
    fault = result.faults[0]
    assert fault["recovery_latency"] is not None
    assert fault["lost_pids"] == ()
    assert fault["restored_pids"], "recovery never exercised the backup"
    assert not result.degraded

    oracle = naive_window_join(trace, cfg.window_seconds)
    assert len(oracle), "degenerate workload: oracle joined nothing"
    assert np.array_equal(sorted_pairs(result.pairs), oracle)


@pytest.mark.parametrize(
    "when", ["mid-epoch", "during-reorg"], ids=["mid-epoch", "during-reorg"]
)
def test_tcp_backend_sigkill_is_lossless(when):
    """TCP row of the matrix: the victim is a real worker process
    connected to its peers over TCP sockets.  SIGKILL closes them, the
    master's timeout path detects the EOF-driven ``NodeDown``, and the
    backup ring restores every partition — the joined multiset must be
    bit-identical to the crash-free oracle, undegraded."""
    cfg = lossless_cfg(
        SEEDS[0],
        backend="tcp",
        time_scale=0.05,
        faults=FaultPlan.parse([f"crash:1@{CRASH_TIMES[when]}s"]),
    )
    trace = closed_trace(cfg, SEEDS[0])
    result = run_with_trace(cfg, trace)

    victim = slave_node_id(1)
    assert result.injected_faults and result.injected_faults[0]["node"] == victim
    assert [f["slave"] for f in result.faults] == [victim]
    fault = result.faults[0]
    assert fault["recovery_latency"] is not None
    assert fault["lost_pids"] == ()
    assert fault["restored_pids"], "recovery never exercised the backup"
    assert not result.degraded

    oracle = naive_window_join(trace, cfg.window_seconds)
    assert len(oracle), "degenerate workload: oracle joined nothing"
    assert np.array_equal(sorted_pairs(result.pairs), oracle)


@pytest.mark.parametrize("seed", SEEDS)
def test_log_only_replication_is_also_lossless(seed):
    """Pure log replication (no periodic re-base): the genesis log
    reaches back to epoch 0, so replay alone reconstructs the state."""
    cfg = lossless_cfg(
        seed,
        replication="log",
        faults=FaultPlan.parse(["crash:1@5s"]),
    )
    trace = closed_trace(cfg, seed)
    result = run_with_trace(cfg, trace)
    assert not result.degraded
    oracle = naive_window_join(trace, cfg.window_seconds)
    assert np.array_equal(sorted_pairs(result.pairs), oracle)


def test_replication_off_crash_stays_degraded_and_restricted():
    """The pre-replication contract, kept as a contrast case: without
    replicas the run is degraded and the survivors' output is a strict
    subset of the oracle's — correct pairs only, but not all of them
    (unless the victim happened to hold no joinable state)."""
    cfg = lossless_cfg(
        SEEDS[0],
        replication="off",
        faults=FaultPlan.parse(["crash:1@5s"]),
    )
    trace = closed_trace(cfg, SEEDS[0])
    result = run_with_trace(cfg, trace)
    assert result.degraded
    assert result.faults[0]["lost_pids"] != ()
    oracle = {tuple(map(int, r)) for r in naive_window_join(trace, cfg.window_seconds)}
    got = {tuple(map(int, r)) for r in sorted_pairs(result.pairs)}
    assert got <= oracle


def test_log_only_indexed_kernel_is_lossless():
    """Log-only replication with the indexed kernel: the whole window
    (and therefore the whole index) is rebuilt purely from shipment
    replay through the normal ingest path."""
    cfg = lossless_cfg(
        SEEDS[0],
        replication="log",
        kernel="indexed",
        faults=FaultPlan.parse(["crash:1@5s"]),
    )
    trace = closed_trace(cfg, SEEDS[0])
    result = run_with_trace(cfg, trace)
    assert not result.degraded
    oracle = naive_window_join(trace, cfg.window_seconds)
    assert np.array_equal(sorted_pairs(result.pairs), oracle)


@pytest.mark.parametrize("kernel", ["blocknlj", "indexed"])
def test_recovered_run_replays_byte_identically(kernel):
    """Determinism survives the whole crash/restore machinery: same
    seed, same plan, same replication mode -> identical output pairs,
    outputs count, and replication byte accounting."""
    cfg = lossless_cfg(
        SEEDS[0], kernel=kernel, faults=FaultPlan.parse(["crash:1@5s"])
    )
    trace = closed_trace(cfg, SEEDS[0])
    a = run_with_trace(cfg, trace)
    b = run_with_trace(cfg, trace)
    assert np.array_equal(sorted_pairs(a.pairs), sorted_pairs(b.pairs))
    assert a.outputs == b.outputs
    assert a.master["replication_bytes"] == b.master["replication_bytes"]
    assert a.master["replication_bytes"] > 0


def test_replication_byte_overhead_is_accounted():
    """Replication is not free; the master's byte meter must reflect
    the teed shipments and checkpoints actually sent."""
    plain = lossless_cfg(SEEDS[0], replication="off")
    replicated = lossless_cfg(SEEDS[0])
    trace = closed_trace(plain, SEEDS[0])
    off = run_with_trace(plain, trace)
    on = run_with_trace(replicated, trace)
    assert off.master["replication_bytes"] == 0
    assert on.master["replication_bytes"] > 0
    # Same joined output either way on a crash-free run.
    assert np.array_equal(sorted_pairs(off.pairs), sorted_pairs(on.pairs))
