"""Chaos suite: deterministic fault injection and recovery tests."""
