"""Transport- and system-level fault mechanics.

Covers the channel fault plane in isolation (timeouts, crash reaping,
drops, delays, fencing) plus the two diagnostics this layer sharpened:
ProtocolError names the peer and expected types, DeadlockError lists
the pending channel operations of a stuck run.
"""

import pytest

from repro.config import SystemConfig
from repro.core.collector import CollectorNode
from repro.core.protocol import Halt, ReorgOrder, Shipment, SlaveSync
from repro.core.system import JoinSystem
from repro.data.tuples import TupleBatch
from repro.errors import DeadlockError, ProtocolError
from repro.faults.injector import FaultInjector
from repro.faults.markers import NodeDown, RecvTimeout, peer_silent
from repro.faults.plan import FaultPlan
from repro.mp.comm import Communicator
from repro.net.sim_transport import SimTransport
from repro.simul.kernel import Simulator

from tests.faults.test_chaos import chaos_cfg

NET = SystemConfig.paper_defaults().network


def make_transport(sim, faults=None):
    return SimTransport(sim, NET, 64, faults=faults)


def make_injector(specs, dist_epoch=2.0):
    return FaultInjector(FaultPlan.parse(specs), [2, 3], dist_epoch)


class TestRecvTimeout:
    def test_silent_peer_resumes_with_marker(self):
        sim = Simulator()
        comm = Communicator(make_transport(sim).endpoint(1))
        got = []

        def waiter():
            msg = yield comm.recv(0, timeout=0.5)
            got.append((msg, sim.now))

        sim.process(waiter())
        sim.run(None)
        assert got == [(RecvTimeout(0.5), 0.5)]
        assert peer_silent(got[0][0])

    def test_matched_message_beats_the_timer(self):
        sim = Simulator()
        transport = make_transport(sim)
        master = Communicator(transport.endpoint(0))
        slave = Communicator(transport.endpoint(1))
        got = []

        def sender():
            yield master.send(1, SlaveSync(0, None))

        def receiver():
            msg = yield slave.recv(0, timeout=5.0)
            got.append(msg)

        sim.process(sender())
        sim.process(receiver())
        sim.run(None)
        assert isinstance(got[0], SlaveSync)

    def test_delayed_transfer_does_not_false_trigger_timeout(self):
        """A matched-but-slow transfer is not a silent peer: the
        rendezvous happened, so the timer must never fire."""
        sim = Simulator()
        injector = make_injector(["delay:0->1@1+2s"])
        transport = make_transport(sim, faults=injector)
        master = Communicator(transport.endpoint(0))
        slave = Communicator(transport.endpoint(1))
        got = []

        def sender():
            yield master.send(1, SlaveSync(0, None))

        def receiver():
            msg = yield slave.recv(0, timeout=0.5)
            got.append((msg, sim.now))

        sim.process(sender())
        sim.process(receiver())
        sim.run(None)
        message, when = got[0]
        assert isinstance(message, SlaveSync)
        assert when >= 2.0  # the injected delay was served in full


class TestCrashReaping:
    def test_recv_from_dead_node_is_immediate(self):
        sim = Simulator()
        transport = make_transport(sim)
        comm = Communicator(transport.endpoint(1))
        transport.kill_node(0)
        got = []

        def waiter():
            msg = yield comm.recv(0)
            got.append((msg, sim.now))

        sim.process(waiter())
        sim.run(None)
        assert got == [(NodeDown(0), 0.0)]

    def test_kill_wakes_blocked_receiver(self):
        sim = Simulator()
        transport = make_transport(sim)
        comm = Communicator(transport.endpoint(1))
        got = []

        def waiter():
            msg = yield comm.recv(0)
            got.append((msg, sim.now))

        def killer():
            yield sim.timeout(1.0)
            transport.kill_node(0)

        sim.process(waiter())
        sim.process(killer())
        sim.run(None)
        assert got == [(NodeDown(0), 1.0)]

    def test_send_to_dead_node_completes_lost(self):
        """TCP-buffered-write model: the sender cannot tell the remote
        end is gone; it pays the transfer time, the message vanishes."""
        sim = Simulator()
        transport = make_transport(sim)
        comm = Communicator(transport.endpoint(0))
        transport.kill_node(1)
        done = []

        def sender():
            yield comm.send(1, SlaveSync(0, None))
            done.append(sim.now)

        sim.process(sender())
        sim.run(None)
        assert done and done[0] > 0.0
        assert transport.messages_lost == 1


class TestMessageFaults:
    def test_drop_discards_exactly_the_kth_message(self):
        sim = Simulator()
        injector = make_injector(["drop:0->1@2"])
        transport = make_transport(sim, faults=injector)
        master = Communicator(transport.endpoint(0))
        slave = Communicator(transport.endpoint(1))
        got = []

        def sender():
            yield master.send(1, SlaveSync(0, "first"))
            yield master.send(1, SlaveSync(0, "second"))

        def receiver():
            got.append((yield slave.recv(0)))
            got.append((yield slave.recv(0, timeout=1.0)))

        sim.process(sender())
        sim.process(receiver())
        sim.run(None)
        assert isinstance(got[0], SlaveSync)
        assert isinstance(got[1], RecvTimeout)
        assert transport.messages_lost == 1
        assert [r["action"] for r in injector.injected] == ["drop"]

    def test_fence_releases_stale_sender(self):
        """drain_pair: a sender the master gave up on completes
        silently instead of wedging the rendezvous channel."""
        sim = Simulator()
        transport = make_transport(sim)
        comm = Communicator(transport.endpoint(0))
        done = []

        def stale():
            yield comm.send(1, SlaveSync(0, None))
            # Later sends on the fenced pair also complete silently.
            yield comm.send(1, SlaveSync(1, None))
            done.append(sim.now)

        def fencer():
            yield sim.timeout(1.0)
            transport.drain_pair(0, 1)

        sim.process(stale())
        sim.process(fencer())
        sim.run(None)
        assert done  # the stale process ran to completion
        assert transport.messages_lost == 2


class TestSlowdowns:
    def test_scaled_cpu_applies_only_inside_the_interval(self):
        injector = make_injector(["slow:0x4@10-20s"])
        node = 2  # slave index 0
        assert injector.scaled_cpu(node, 9.9, 1.0) == 1.0
        assert injector.scaled_cpu(node, 10.0, 1.0) == 4.0
        assert injector.scaled_cpu(node, 19.9, 0.5) == 2.0
        assert injector.scaled_cpu(node, 20.0, 1.0) == 1.0
        assert injector.scaled_cpu(3, 15.0, 1.0) == 1.0  # other slave
        assert [r["action"] for r in injector.injected] == ["slow"]

    def test_slowdown_costs_cpu_without_degrading_the_run(self):
        base = JoinSystem(chaos_cfg(1)).run()
        slowed = JoinSystem(
            chaos_cfg(1, faults=FaultPlan.parse(["slow:0x4@6-12s"]))
        ).run()
        assert not slowed.degraded
        assert [r["action"] for r in slowed.injected_faults] == ["slow"]
        assert slowed.slaves[0]["cpu_total"] > base.slaves[0]["cpu_total"]


class TestSharpenedDiagnostics:
    def test_protocol_error_names_node_peer_and_types(self):
        sim = Simulator()
        transport = make_transport(sim)
        master = Communicator(transport.endpoint(0))
        slave = Communicator(transport.endpoint(1))

        def master_proc():
            yield master.send(1, Shipment(0, 0.0, 2.0, TupleBatch.empty()))

        def slave_proc():
            yield from slave.recv_expect(0, ReorgOrder, Halt)

        sim.process(master_proc())
        p = sim.process(slave_proc())
        with pytest.raises(ProtocolError) as exc:
            sim.run(until=p)
        message = str(exc.value)
        assert "protocol violation at node 1" in message
        assert "expected ReorgOrder | Halt from peer 0" in message
        assert "got Shipment" in message

    def test_pending_summary_names_endpoints(self):
        sim = Simulator()
        transport = make_transport(sim)
        comm0 = Communicator(transport.endpoint(0))
        comm1 = Communicator(transport.endpoint(1))

        def lonely_send():
            yield comm0.send(3, SlaveSync(0, None))

        def lonely_recv():
            yield comm1.recv(5)

        sim.process(lonely_send())
        sim.process(lonely_recv())
        sim.run(None)
        summary = transport.pending_summary()
        assert "0->3: 1 pending send (SlaveSync)" in summary
        assert "5->1: 1 pending recv" in summary

    def test_deadlock_error_lists_pending_channel_ops(
        self, tiny_cfg, monkeypatch
    ):
        """A stuck run's DeadlockError names the exact rendezvous that
        never completed, not just the stuck process names."""
        original = CollectorNode.processes

        def stuck(self):
            yield self.comm.recv(99)

        monkeypatch.setattr(
            CollectorNode,
            "processes",
            lambda self: [*original(self), stuck(self)],
        )
        with pytest.raises(DeadlockError) as exc:
            JoinSystem(tiny_cfg).run()
        message = str(exc.value)
        assert "pending channel ops" in message
        assert "99->1: 1 pending recv" in message


class TestFencedSlave:
    def test_dropped_control_message_degrades_but_completes(self):
        """Dropping a slave's first Shipment wedges it mid-epoch; the
        master times out on its sync, fences it, and the run completes
        (the fence Halt releases the slave's pending receive)."""
        cfg = chaos_cfg(1, faults=FaultPlan.parse(["drop:0->3@1"]))
        result = JoinSystem(cfg).run()
        assert result.degraded
        assert result.master["dead_slaves"] == [3]
        assert result.outputs > 0
