"""Master-failover chaos wall: kill the coordinator, lose nothing.

With ``standby=True`` and ``checkpoint+log`` replication, a mid-run
master SIGKILL must be survived by the standby: it replays the fatal
round against its mirrored state, re-fences every slave, and finishes
the run as the acting master.  Every scenario compares the completed
run against the *unrestricted* crash-free ``naive_window_join`` oracle
over a closed trace — if the takeover lost a buffered tuple, dropped an
in-flight shipment, or double-counted a banked pair chunk, the
multisets differ and the test fails.

The matrix crosses backends (sim / thread / process) with adversarial
kill times: before the first reorg, inside the reorg exchange, and
mid-epoch.  The sim rows additionally assert byte-identical same-seed
replays — the takeover path itself must be deterministic.
"""

import os

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.system import JoinSystem, MASTER_ID
from repro.faults.plan import FaultPlan
from repro.reference import naive_window_join
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer

SEEDS = [int(os.environ.get("CHAOS_SEED_BASE", "1")) + i for i in range(3)]

#: Adversarial kill times (dist_epoch=2, reorg_epoch=4): during a plain
#: round before any reorg ran, inside the first reorg exchange, and
#: mid-epoch after state moved around.
KILL_TIMES = {
    "before-reorg": 3.0,
    "during-reorg": 4.02,
    "mid-epoch": 5.0,
}


def failover_cfg(seed: int, **overrides) -> SystemConfig:
    base = dict(
        npart=12,
        rate=400.0,
        num_slaves=3,
        run_seconds=16.0,
        warmup_seconds=6.0,
        window_seconds=3.0,
        reorg_epoch=4.0,
        seed=seed,
        replication="checkpoint+log",
        standby=True,
    )
    base.update(overrides)
    return SystemConfig.paper_defaults().scaled(0.01).with_(**base)


def closed_trace(cfg, seed):
    rng = RngRegistry(seed)
    wl = TwoStreamWorkload.poisson_bmodel(
        rng, cfg.rate, cfg.b_skew, cfg.key_domain
    )
    return wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)


def run_with_trace(cfg, trace):
    return JoinSystem(
        cfg, collect_pairs=True, workload=TraceReplayer(trace)
    ).run()


def sorted_pairs(pairs):
    if pairs is None or not len(pairs):
        return np.empty((0, 2), dtype=np.int64)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


def assert_survived_master_kill(result, trace, cfg):
    """The takeover completed, lost nothing, and recorded itself."""
    master_faults = [f for f in result.faults if f["slave"] == MASTER_ID]
    assert len(master_faults) == 1, result.faults
    fault = master_faults[0]
    assert fault["where"] == "standby"
    assert fault["recovery_latency"] is not None
    assert not result.degraded, result.faults

    oracle = naive_window_join(trace, cfg.window_seconds)
    assert len(oracle), "degenerate workload: oracle joined nothing"
    assert np.array_equal(sorted_pairs(result.pairs), oracle)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("when", sorted(KILL_TIMES), ids=sorted(KILL_TIMES))
def test_sim_master_kill_is_lossless(seed, when):
    cfg = failover_cfg(
        seed, faults=FaultPlan.parse([f"crash:master@{KILL_TIMES[when]}s"])
    )
    trace = closed_trace(cfg, seed)
    result = run_with_trace(cfg, trace)
    assert_survived_master_kill(result, trace, cfg)


def test_sim_master_kill_replay_is_byte_identical():
    """Same seed, same kill -> bit-identical joined pairs: the election
    and fatal-round replay are as deterministic as a fault-free run."""
    cfg = failover_cfg(
        SEEDS[0], faults=FaultPlan.parse(["crash:master@5s"])
    )
    trace = closed_trace(cfg, SEEDS[0])
    first = run_with_trace(cfg, trace)
    second = run_with_trace(cfg, trace)
    assert np.array_equal(
        sorted_pairs(first.pairs), sorted_pairs(second.pairs)
    )
    assert first.faults == second.faults


def test_sim_master_kill_with_slave_backup_restore():
    """The fatal round may carry planned restores: killing the master
    right after it planned a recovery reorg must not strand the dead
    slave's partitions (re-planned by the acting master)."""
    cfg = failover_cfg(
        SEEDS[0],
        faults=FaultPlan.parse(["crash:1@3s", "crash:master@7s"]),
    )
    trace = closed_trace(cfg, SEEDS[0])
    result = run_with_trace(cfg, trace)
    assert_survived_master_kill(result, trace, cfg)


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize(
    "when", ["before-reorg", "mid-epoch"], ids=["before-reorg", "mid-epoch"]
)
def test_wallclock_master_kill_is_lossless(backend, when):
    """Wall-clock rows: the master dies for real (halt token / SIGKILL)
    and the standby detects it through transport EOF, not a simulated
    dead set.  Output multiset must still match the crash-free oracle."""
    cfg = failover_cfg(
        SEEDS[0],
        backend=backend,
        time_scale=0.05,
        faults=FaultPlan.parse([f"crash:master@{KILL_TIMES[when]}s"]),
    )
    trace = closed_trace(cfg, SEEDS[0])
    result = run_with_trace(cfg, trace)
    assert_survived_master_kill(result, trace, cfg)
