"""Fault injection is part of the seeded, replayable experiment state.

Same seed + same FaultPlan must reproduce the run byte-for-byte;
different fault schedules must visibly diverge; and a plan that only
arms detection (no faults) must not perturb a healthy run at all.
"""

import json

from repro.config import ObservabilityConfig
from repro.core.system import JoinSystem
from repro.faults.plan import FaultPlan

from tests.faults.test_chaos import SEEDS, chaos_cfg


def result_fingerprint(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True, default=str)


def test_same_seed_same_plan_is_byte_identical():
    cfg = chaos_cfg(SEEDS[0], faults=FaultPlan.parse(["crash:1@5s"]))
    first = JoinSystem(cfg).run()
    second = JoinSystem(cfg).run()
    assert result_fingerprint(first) == result_fingerprint(second)


def test_different_fault_schedules_diverge():
    early = chaos_cfg(SEEDS[0], faults=FaultPlan.parse(["crash:1@3s"]))
    late = chaos_cfg(SEEDS[0], faults=FaultPlan.parse(["crash:1@9s"]))
    a = JoinSystem(early).run()
    b = JoinSystem(late).run()
    assert a.injected_faults != b.injected_faults
    assert a.faults[0]["detected_at"] != b.faults[0]["detected_at"]
    assert result_fingerprint(a) != result_fingerprint(b)


def test_detection_timers_alone_do_not_perturb_the_run():
    """Arming heartbeat timeouts without any fault must leave every
    metric identical to the fault-free run (zero-overhead invariant)."""
    plain = chaos_cfg(SEEDS[0])
    armed = plain.with_(faults=FaultPlan(detect_timeout=5.0))
    baseline = JoinSystem(plain).run()
    guarded = JoinSystem(armed).run()
    assert not guarded.degraded
    assert result_fingerprint(baseline) == result_fingerprint(guarded)


def test_trace_records_fault_and_recovery_events():
    """With tracing on, the trace tells the failure story: injection,
    detection, fencing, then one recovery event naming the adopters."""
    cfg = chaos_cfg(
        SEEDS[0],
        faults=FaultPlan.parse(["crash:1@5s"]),
        obs=ObservabilityConfig(trace_memory=True),
    )
    result = JoinSystem(cfg).run()
    assert result.trace is not None
    by_kind: dict[str, list] = {}
    for record in result.trace:
        by_kind.setdefault(record["kind"], []).append(record)
    fault_actions = [r["action"] for r in by_kind.get("fault", ())]
    assert "crash" in fault_actions
    assert "detect" in fault_actions
    assert "fence" in fault_actions
    recoveries = by_kind.get("recovery", [])
    assert len(recoveries) == 1
    assert list(recoveries[0]["dead"]) == [result.faults[0]["slave"]]
    assert sorted(recoveries[0]["pids"]) == sorted(result.faults[0]["pids"])
