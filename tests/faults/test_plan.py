"""FaultPlan parsing, validation and round-tripping."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.faults.plan import (
    CrashFault,
    FaultPlan,
    MessageFault,
    SlowFault,
    parse_fault,
)


class TestParse:
    def test_crash_spec(self):
        fault = parse_fault("crash:2@35s")
        assert fault == CrashFault(2, 35.0)
        assert fault.spec() == "crash:2@35s"

    def test_trailing_s_is_optional(self):
        assert parse_fault("crash:0@1.5") == CrashFault(0, 1.5)

    def test_drop_spec(self):
        fault = parse_fault("drop:2->0@3")
        assert fault == MessageFault(2, 0, 3, "drop")
        assert fault.spec() == "drop:2->0@3"

    def test_delay_spec(self):
        fault = parse_fault("delay:0->3@2+0.5s")
        assert fault == MessageFault(0, 3, 2, "delay", 0.5)
        assert fault.spec() == "delay:0->3@2+0.5s"

    def test_slow_spec(self):
        fault = parse_fault("slow:1x4@10-20s")
        assert fault == SlowFault(1, 4.0, 10.0, 20.0)
        assert fault.spec() == "slow:1x4@10-20s"

    def test_specs_round_trip_through_parse(self):
        plan = FaultPlan.parse(
            ["crash:1@5s", "drop:0->2@3", "delay:2->0@1+0.25s", "slow:0x2@1-9s"]
        )
        assert FaultPlan.parse(plan.specs()) == plan

    @pytest.mark.parametrize(
        "spec",
        [
            "crash:1",
            "crash:@3s",
            "boom:1@3s",
            "drop:1->1@2",  # src == dst
            "drop:0->2@0",  # ordinals are 1-based
            "delay:0->2@1+0s",  # delay must be positive
            "slow:1x0@1-2s",  # factor must be positive
            "slow:1x2@5-5s",  # empty interval
            "",
        ],
    )
    def test_bad_specs_raise_config_error(self, spec):
        with pytest.raises(ConfigError):
            parse_fault(spec)


class TestValidation:
    def test_crash_index_checked_against_cluster_size(self):
        plan = FaultPlan.parse(["crash:5@1s"])
        with pytest.raises(ConfigError, match="only 3 slaves"):
            plan.validated(num_slaves=3)

    def test_duplicate_message_ordinal_rejected(self):
        plan = FaultPlan(
            messages=(
                MessageFault(0, 2, 3, "drop"),
                MessageFault(0, 2, 3, "delay", 0.5),
            )
        )
        with pytest.raises(ConfigError, match="duplicate"):
            plan.validated()

    def test_nonpositive_detect_timeout_rejected(self):
        with pytest.raises(ConfigError, match="detect_timeout"):
            FaultPlan(detect_timeout=0.0).validated()

    def test_system_config_validates_its_plan(self):
        cfg = SystemConfig.paper_defaults()
        with pytest.raises(ConfigError):
            cfg.with_(faults=FaultPlan.parse(["crash:99@1s"]))


class TestEnablement:
    def test_empty_plan_is_disabled(self):
        plan = FaultPlan()
        assert not plan.enabled

    def test_any_fault_enables_the_plan(self):
        assert FaultPlan.parse(["crash:0@1s"]).enabled
        assert FaultPlan.parse(["drop:0->2@1"]).enabled
        assert FaultPlan.parse(["slow:0x2@1-2s"]).enabled
        assert FaultPlan(detect_timeout=3.0).enabled

    def test_effective_timeout_defaults_to_dist_epoch(self):
        assert FaultPlan.parse(["crash:0@1s"]).effective_timeout(2.0) == 2.0
        assert FaultPlan(detect_timeout=0.75).effective_timeout(2.0) == 0.75
