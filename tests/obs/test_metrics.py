"""Unit tests for the typed metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("outputs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.snapshot() == {"kind": "counter", "value": 3.5}

    def test_counter_rejects_negative(self):
        c = Counter("outputs")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1.0)

    def test_gauge_set_and_add(self):
        g = Gauge("occupancy")
        g.set(0.25)
        g.add(0.5)
        assert g.value == 0.75
        assert g.snapshot()["kind"] == "gauge"

    def test_histogram_buckets(self):
        h = Histogram("delay", buckets=(0.1, 1.0, 10.0))
        h.observe_many([0.05, 0.5, 0.5, 5.0, 100.0])
        snap = h.snapshot()
        assert snap["counts"] == [1, 2, 1, 1]  # last bin = +Inf tail
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(106.05)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("delay", buckets=(1.0, 0.5))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestRegistry:
    def test_factories_are_idempotent(self):
        reg = MetricsRegistry(node=2)
        a = reg.counter("outputs")
        b = reg.counter("outputs")
        assert a is b
        assert len(reg) == 1

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry(node=2)
        reg.counter("outputs")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("outputs")

    def test_snapshot_is_sorted_and_plain(self):
        import json

        reg = MetricsRegistry(node=2)
        reg.gauge("b").set(1.0)
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert list(snap) == ["a", "b"]
        json.dumps(snap)  # must be JSON-serializable

    def test_null_registry_registers_nothing(self):
        assert not NULL_REGISTRY.enabled
        c = NULL_REGISTRY.counter("outputs")
        c.inc(100.0)
        g = NULL_REGISTRY.gauge("occ")
        g.set(5.0)
        h = NULL_REGISTRY.histogram("delay")
        h.observe(1.0)
        assert c.value == 0.0
        assert g.value == 0.0
        assert h.count == 0
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == {}

    def test_null_instruments_are_shared(self):
        assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.counter("y")


class TestPrometheusRendering:
    def test_families_carry_node_labels(self):
        a, b = MetricsRegistry(node=0), MetricsRegistry(node=2)
        a.counter("epochs").inc(3)
        b.counter("epochs").inc(5)
        b.gauge("occupancy").set(0.5)
        text = render_prometheus({0: a.snapshot(), 2: b.snapshot()})
        assert "# TYPE swjoin_epochs counter" in text
        assert 'swjoin_epochs_total{node="0"} 3' in text
        assert 'swjoin_epochs_total{node="2"} 5' in text
        assert 'swjoin_occupancy{node="2"} 0.5' in text
        assert text.endswith("\n")

    def test_histogram_renders_cumulative_buckets(self):
        reg = MetricsRegistry(node=2)
        h = reg.histogram("delay", buckets=(0.1, 1.0))
        h.observe_many([0.05, 0.5, 5.0])
        text = render_prometheus({2: reg.snapshot()})
        assert 'swjoin_delay_bucket{node="2",le="0.1"} 1' in text
        assert 'swjoin_delay_bucket{node="2",le="1"} 2' in text
        assert 'swjoin_delay_bucket{node="2",le="+Inf"} 3' in text
        assert 'swjoin_delay_count{node="2"} 3' in text

    def test_output_is_deterministic(self):
        reg = MetricsRegistry(node=0)
        reg.counter("z").inc()
        reg.counter("a").inc()
        snaps = {0: reg.snapshot()}
        assert render_prometheus(snaps) == render_prometheus(snaps)

    def test_empty_input_renders_empty(self):
        assert render_prometheus({}) == ""
