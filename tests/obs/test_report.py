"""Offline trace analysis: timelines and hot partitions from records."""

import json

import pytest

from repro.obs.report import (
    epoch_timeline,
    hot_partitions,
    load_trace,
    render_report,
)


def _epoch(t, epoch, phase="dist", active=2, buffered=0):
    return {
        "kind": "epoch",
        "t": t,
        "node": 0,
        "epoch": epoch,
        "phase": phase,
        "active": active,
        "buffered_bytes": buffered,
    }


def _split(t, pid):
    return {
        "kind": "split",
        "t": t,
        "node": 2,
        "pid": pid,
        "n_buckets": 4,
        "depth": 2,
        "bytes": 64,
    }


def _move_end(t, pid, role="supplier", nbytes=2048):
    return {
        "kind": "state_move",
        "t": t,
        "node": 2,
        "phase": "end",
        "role": role,
        "pid": pid,
        "peer": 3,
        "nbytes": nbytes,
    }


SYNTHETIC = [
    _epoch(2.0, 0),
    _split(2.5, 7),
    _split(3.0, 7),
    _split(3.5, 1),
    _epoch(4.0, 1, phase="reorg", buffered=2048),
    {
        "kind": "classify",
        "t": 4.0,
        "node": 0,
        "epoch": 1,
        "suppliers": [2],
        "consumers": [3],
        "neutrals": [],
        "occupancy": {"2": 0.9, "3": 0.1},
    },
    {
        "kind": "reorg",
        "t": 4.0,
        "node": 0,
        "epoch": 1,
        "suppliers": [2],
        "consumers": [3],
        "neutrals": [],
        "moves": [[7, 2, 3]],
        "activate": [],
        "deactivate": [],
    },
    _move_end(4.2, 7),
    _move_end(4.2, 7, role="consumer"),
    {
        "kind": "dod",
        "t": 4.3,
        "node": 0,
        "epoch": 1,
        "n_active": 3,
        "activated": [4],
        "deactivated": [],
    },
    {"kind": "drain", "t": 4.8, "node": 3, "epoch": 1, "window_bytes": 100},
    {
        "kind": "sample",
        "t": 3.0,
        "node": 2,
        "gauges": {"occupancy": 0.5, "window_bytes": 100.0},
    },
]


class TestEpochTimeline:
    def test_one_row_per_epoch_marker(self):
        rows = epoch_timeline(SYNTHETIC)
        assert [r["epoch"] for r in rows] == [0, 1]

    def test_timestamped_events_bucket_by_marker_time(self):
        rows = epoch_timeline(SYNTHETIC)
        assert rows[0]["splits"] == 3  # all splits precede the k=1 marker
        assert rows[1]["splits"] == 0

    def test_reorg_row_aggregates_decision(self):
        row = epoch_timeline(SYNTHETIC)[1]
        assert row["phase"] == "reorg"
        assert row["sup/con/neu"] == "1/1/0"
        assert row["moves"] == 1
        # Only the supplier's end span counts (consumer would double it).
        assert row["moved_kb"] == pytest.approx(2.0)
        assert row["drains"] == 1
        assert row["dod"] == "->3"

    def test_empty_trace(self):
        assert epoch_timeline([]) == []


class TestHotPartitions:
    def test_ranked_by_activity(self):
        rows = hot_partitions(SYNTHETIC, top=5)
        assert rows[0]["pid"] == 7  # 2 splits + 1 move
        assert rows[0]["splits"] == 2
        assert rows[0]["moves"] == 1
        assert rows[0]["moved_kb"] == pytest.approx(2.0)
        assert rows[1]["pid"] == 1

    def test_top_limits_rows(self):
        assert len(hot_partitions(SYNTHETIC, top=1)) == 1


class TestLoadTrace:
    def test_splits_meta_from_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [{"kind": "meta", "version": 1, "config": {"seed": 7}}]
        lines += SYNTHETIC
        path.write_text("\n".join(json.dumps(r) for r in lines))
        meta, records = load_trace(str(path))
        assert meta["config"] == {"seed": 7}
        assert len(records) == len(SYNTHETIC)

    def test_malformed_line_raises_with_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "epoch"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(str(path))


class TestRenderReport:
    def test_sections_present(self):
        text = render_report({"version": 1, "config": {"rate": 10}}, SYNTHETIC)
        assert "schema v1" in text
        assert "rate=10" in text
        assert "epoch timeline" in text
        assert "hot partitions" in text
        assert "buffer occupancy" in text

    def test_empty_trace_renders(self):
        text = render_report(None, [])
        assert "0 events" in text
        assert "no epoch events" in text
