"""Offline trace analysis: timelines and hot partitions from records."""

import json

import pytest

from repro.obs.report import (
    recovery_timeline,
    epoch_timeline,
    hot_partitions,
    load_trace,
    render_report,
)


def _epoch(t, epoch, phase="dist", active=2, buffered=0):
    return {
        "kind": "epoch",
        "t": t,
        "node": 0,
        "epoch": epoch,
        "phase": phase,
        "active": active,
        "buffered_bytes": buffered,
    }


def _split(t, pid):
    return {
        "kind": "split",
        "t": t,
        "node": 2,
        "pid": pid,
        "n_buckets": 4,
        "depth": 2,
        "bytes": 64,
    }


def _move_end(t, pid, role="supplier", nbytes=2048):
    return {
        "kind": "state_move",
        "t": t,
        "node": 2,
        "phase": "end",
        "role": role,
        "pid": pid,
        "peer": 3,
        "nbytes": nbytes,
    }


SYNTHETIC = [
    _epoch(2.0, 0),
    _split(2.5, 7),
    _split(3.0, 7),
    _split(3.5, 1),
    _epoch(4.0, 1, phase="reorg", buffered=2048),
    {
        "kind": "classify",
        "t": 4.0,
        "node": 0,
        "epoch": 1,
        "suppliers": [2],
        "consumers": [3],
        "neutrals": [],
        "occupancy": {"2": 0.9, "3": 0.1},
    },
    {
        "kind": "reorg",
        "t": 4.0,
        "node": 0,
        "epoch": 1,
        "suppliers": [2],
        "consumers": [3],
        "neutrals": [],
        "moves": [[7, 2, 3]],
        "activate": [],
        "deactivate": [],
    },
    _move_end(4.2, 7),
    _move_end(4.2, 7, role="consumer"),
    {
        "kind": "dod",
        "t": 4.3,
        "node": 0,
        "epoch": 1,
        "n_active": 3,
        "activated": [4],
        "deactivated": [],
    },
    {"kind": "drain", "t": 4.8, "node": 3, "epoch": 1, "window_bytes": 100},
    {
        "kind": "sample",
        "t": 3.0,
        "node": 2,
        "gauges": {"occupancy": 0.5, "window_bytes": 100.0},
    },
]


class TestEpochTimeline:
    def test_one_row_per_epoch_marker(self):
        rows = epoch_timeline(SYNTHETIC)
        assert [r["epoch"] for r in rows] == [0, 1]

    def test_timestamped_events_bucket_by_marker_time(self):
        rows = epoch_timeline(SYNTHETIC)
        assert rows[0]["splits"] == 3  # all splits precede the k=1 marker
        assert rows[1]["splits"] == 0

    def test_reorg_row_aggregates_decision(self):
        row = epoch_timeline(SYNTHETIC)[1]
        assert row["phase"] == "reorg"
        assert row["sup/con/neu"] == "1/1/0"
        assert row["moves"] == 1
        # Only the supplier's end span counts (consumer would double it).
        assert row["moved_kb"] == pytest.approx(2.0)
        assert row["drains"] == 1
        assert row["dod"] == "->3"

    def test_empty_trace(self):
        assert epoch_timeline([]) == []


class TestHotPartitions:
    def test_ranked_by_activity(self):
        rows = hot_partitions(SYNTHETIC, top=5)
        assert rows[0]["pid"] == 7  # 2 splits + 1 move
        assert rows[0]["splits"] == 2
        assert rows[0]["moves"] == 1
        assert rows[0]["moved_kb"] == pytest.approx(2.0)
        assert rows[1]["pid"] == 1

    def test_top_limits_rows(self):
        assert len(hot_partitions(SYNTHETIC, top=1)) == 1


class TestLoadTrace:
    def test_splits_meta_from_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [{"kind": "meta", "version": 1, "config": {"seed": 7}}]
        lines += SYNTHETIC
        path.write_text("\n".join(json.dumps(r) for r in lines))
        meta, records = load_trace(str(path))
        assert meta["config"] == {"seed": 7}
        assert len(records) == len(SYNTHETIC)

    def test_malformed_line_raises_with_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "epoch"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(str(path))


class TestRenderReport:
    def test_sections_present(self):
        text = render_report({"version": 1, "config": {"rate": 10}}, SYNTHETIC)
        assert "schema v1" in text
        assert "rate=10" in text
        assert "epoch timeline" in text
        assert "hot partitions" in text
        assert "buffer occupancy" in text

    def test_empty_trace_renders(self):
        text = render_report(None, [])
        assert "0 events" in text
        assert "no epoch events" in text


class TestRecoveryTimeline:
    def _fault(self, t, action, target, info):
        return {
            "kind": "fault",
            "t": t,
            "node": 0,
            "action": action,
            "target": target,
            "info": info,
            "epoch": 1,
        }

    def test_unlimited_detect_timeout_renders_as_unlimited(self):
        """An unlimited detection timeout is traced as info=-1.0 (None
        is not wire-able, 0.0 is a real zero-second timeout): the report
        must say so instead of printing the sentinel."""
        rows = recovery_timeline(
            [
                self._fault(1.0, "detect", 3, -1.0),
                self._fault(1.0, "detect", 4, 0.0),
                self._fault(1.0, "detect", 5, 2.5),
            ]
        )
        details = {r["detail"] for r in rows}
        assert "detect target=3 timeout=unlimited" in details
        assert "detect target=4 info=0" in details  # 0.0 must not vanish
        assert "detect target=5 info=2.5" in details

    def test_election_and_takeover_rows(self):
        rows = recovery_timeline(
            [
                {
                    "kind": "election",
                    "t": 5.0,
                    "node": 5,
                    "fatal_epoch": 2,
                    "synced_epoch": 1,
                    "plan_epoch": -1,
                },
                {
                    "kind": "takeover",
                    "t": 6.1,
                    "node": 5,
                    "epoch": 3,
                    "rejoined": (2, 3, 4),
                    "latency": 1.106,
                },
            ]
        )
        assert [r["kind"] for r in rows] == ["election", "takeover"]
        assert rows[0]["detail"] == "fatal_epoch=2 synced_epoch=1 plan=none"
        assert rows[1]["detail"] == "epoch=3 rejoined=3 latency=1.106s"

    def test_unrecovered_at_halt_footer(self):
        """A failure detected but never recovered before the run ends
        must be called out below the timeline."""
        records = [
            self._fault(1.0, "detect", 3, 2.5),
            self._fault(2.0, "detect", 4, 2.5),
            {
                "kind": "recovery",
                "t": 3.0,
                "node": 0,
                "epoch": 2,
                "dead": (3,),
                "pids": (1, 2),
                "adopters": (2,),
                "latency": 2.0,
            },
        ]
        text = render_report(None, records)
        assert "unrecovered at halt: [4]" in text
        # Once slave 4 recovers too, the footer disappears.
        records.append(
            {
                "kind": "recovery",
                "t": 4.0,
                "node": 0,
                "epoch": 3,
                "dead": (4,),
                "pids": (5,),
                "adopters": (2,),
                "latency": 2.0,
            }
        )
        assert "unrecovered at halt" not in render_report(None, records)
