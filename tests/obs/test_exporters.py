"""Exporter edge cases: concurrent JSONL writers, merge determinism."""

import json
import random
import threading

from repro.obs.exporters import (
    JsonlExporter,
    MemoryExporter,
    merge_records,
    replay_records,
)


class TestJsonlConcurrency:
    def test_concurrent_writers_never_interleave_lines(self, tmp_path):
        """Many threads hammering one exporter must yield intact JSON
        lines — the per-exporter lock is the write atomicity boundary."""
        path = str(tmp_path / "trace.jsonl")
        exporter = JsonlExporter(path, meta={"test": True})
        n_threads, per_thread = 8, 200

        def hammer(tid):
            for i in range(per_thread):
                exporter.export(
                    {"kind": "sample", "t": float(i), "node": tid,
                     "payload": "x" * 64}
                )

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        exporter.close()

        assert exporter.n_records == n_threads * per_thread
        with open(path, encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == 1 + n_threads * per_thread  # meta + records
        per_node = {}
        for line in lines:
            record = json.loads(line)  # intact JSON or the test dies here
            if record["kind"] == "sample":
                per_node.setdefault(record["node"], []).append(record["t"])
        # Per-thread ordering survives (each thread's writes are FIFO).
        for tid, times in per_node.items():
            assert times == sorted(times)
            assert len(times) == per_thread

    def test_close_races_with_export(self, tmp_path):
        """close() while another thread exports must not corrupt the
        file; late exports after close raise instead of writing."""
        path = str(tmp_path / "trace.jsonl")
        exporter = JsonlExporter(path)
        stop = threading.Event()
        errors = []

        def hammer():
            i = 0
            while not stop.is_set():
                try:
                    exporter.export({"kind": "sample", "t": float(i), "node": 0})
                except ValueError:
                    return  # closed under us: the documented outcome
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return
                i += 1

        thread = threading.Thread(target=hammer)
        thread.start()
        exporter.close()
        stop.set()
        thread.join()
        assert not errors
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    json.loads(line)


class TestMergeDeterminism:
    @staticmethod
    def _node_buffer(node, n, t0=0.0):
        return [
            {"kind": "sample", "t": t0 + i * 0.5, "node": node, "seq": i}
            for i in range(n)
        ]

    def test_merge_is_input_order_invariant(self):
        per_node = {
            0: self._node_buffer(0, 20),
            2: self._node_buffer(2, 20),
            3: self._node_buffer(3, 20, t0=0.25),
        }
        merged = merge_records(per_node)
        # Same buffers presented in any dict order merge identically.
        for _ in range(5):
            keys = list(per_node)
            random.Random(42).shuffle(keys)
            assert merge_records({k: per_node[k] for k in keys}) == merged

    def test_merge_orders_by_time_node_seq(self):
        per_node = {
            2: [
                {"kind": "a", "t": 1.0, "node": 2, "seq": 0},
                {"kind": "b", "t": 1.0, "node": 2, "seq": 1},
            ],
            0: [{"kind": "c", "t": 1.0, "node": 0, "seq": 5}],
            3: [{"kind": "d", "t": 0.5, "node": 3, "seq": 9}],
        }
        merged = merge_records(per_node)
        assert [r["kind"] for r in merged] == ["d", "c", "a", "b"]

    def test_merge_tolerates_missing_seq(self):
        per_node = {0: [{"kind": "a", "t": 1.0, "node": 0}]}
        assert merge_records(per_node)[0]["kind"] == "a"

    def test_replay_feeds_and_closes_exporters(self, tmp_path):
        records = self._node_buffer(2, 3)
        memory = MemoryExporter()
        path = str(tmp_path / "merged.jsonl")
        jsonl = JsonlExporter(path)
        replay_records(records, [memory, jsonl])
        assert memory.records == records
        assert jsonl.n_records == 3
        with open(path, encoding="utf-8") as fh:
            assert len(fh.readlines()) == 4  # meta + 3
