"""Tests for the admin/health HTTP endpoint (repro.obs.admin)."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.config import ObservabilityConfig, SystemConfig
from repro.core.cluster import build_cluster
from repro.core.system import JoinSystem
from repro.net.sim_transport import SimTransport
from repro.obs.admin import (
    ACTIVE_SERVERS,
    STATUS_SCHEMA_VERSION,
    AdminServer,
    cluster_status,
)
from repro.obs.metrics import render_prometheus
from repro.runtime.sim import SimRuntime
from repro.simul.kernel import Simulator

#: Every key the /status document guarantees (schema v1).  A golden
#: contract: removing or renaming one is a breaking schema change and
#: must bump STATUS_SCHEMA_VERSION.
STATUS_KEYS_V1 = {
    "schema",
    "backend",
    "t",
    "run_seconds",
    "acting_master",
    "epochs",
    "reorgs",
    "nodes",
    "partition_owners",
    "replication_bytes",
    "degraded",
    "failures",
    "recovery_latencies",
}


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


def _tiny_cluster():
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.02)
        .with_(obs=ObservabilityConfig(metrics=True))
    )
    sim = Simulator()
    runtime = SimRuntime(sim)
    transport = SimTransport(sim, cfg.network, cfg.tuple_bytes)
    return cfg, build_cluster(cfg, runtime, transport), runtime


class TestAdminServer:
    def test_routes_and_ephemeral_port(self):
        server = AdminServer(
            lambda: {"schema": STATUS_SCHEMA_VERSION, "hello": 1},
            lambda: "# TYPE swjoin_x counter\nswjoin_x_total 1\n",
        )
        try:
            assert server.port > 0
            assert server in ACTIVE_SERVERS

            status, ctype, body = _get(f"{server.url}/health")
            health = json.loads(body)
            assert status == 200 and ctype == "application/json"
            assert health["status"] == "ok"
            assert health["uptime_s"] >= 0.0

            status, _, body = _get(f"{server.url}/status")
            assert status == 200
            assert json.loads(body) == {
                "schema": STATUS_SCHEMA_VERSION,
                "hello": 1,
            }

            status, ctype, body = _get(f"{server.url}/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            assert b"swjoin_x_total 1" in body

            status, _, body = _get(f"{server.url}/")
            assert set(json.loads(body)["endpoints"]) == {
                "/health",
                "/status",
                "/metrics",
            }

            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/nope")
            assert err.value.code == 404
        finally:
            server.close()
        assert server not in ACTIVE_SERVERS

    def test_handler_exception_returns_500_not_crash(self):
        def broken():
            raise RuntimeError("kaboom")

        server = AdminServer(broken, lambda: "")
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/status")
            assert err.value.code == 500
            assert b"kaboom" in err.value.read()
            # The server survives a handler error.
            status, _, _ = _get(f"{server.url}/health")
            assert status == 200
        finally:
            server.close()

    def test_close_is_idempotent(self):
        server = AdminServer(lambda: {}, lambda: "")
        server.close()
        server.close()


class TestClusterStatus:
    def test_status_schema_golden(self):
        cfg, cluster, runtime = _tiny_cluster()
        doc = cluster_status(cfg, cluster, runtime.now, "sim")
        assert set(doc) == STATUS_KEYS_V1
        assert doc["schema"] == STATUS_SCHEMA_VERSION
        assert doc["backend"] == "sim"
        json.dumps(doc)  # the document must be pure JSON

        roles = {n["role"] for n in doc["nodes"]}
        assert roles == {"master", "collector", "slave"}
        assert len(doc["nodes"]) == 2 + cfg.num_slaves
        assert doc["acting_master"] == cluster.master.comm.node_id
        for row in doc["nodes"]:
            assert row["alive"] is True
        slave_rows = [n for n in doc["nodes"] if n["role"] == "slave"]
        assert {
            "node", "role", "alive", "active", "partitions", "occupancy"
        } <= set(slave_rows[0])
        # Every partition is owned by some slave before the run starts.
        assert len(doc["partition_owners"]) == cfg.npart
        assert sum(n["partitions"] for n in slave_rows) == cfg.npart
        assert doc["degraded"] is False
        assert doc["failures"] == []

    def test_status_over_http_end_to_end(self):
        cfg, cluster, runtime = _tiny_cluster()
        server = AdminServer(
            lambda: cluster_status(cfg, cluster, runtime.now, "sim"),
            lambda: render_prometheus(
                {n: r.snapshot() for n, r in cluster.registries.items()}
            ),
        )
        try:
            _, _, body = _get(f"{server.url}/status")
            assert set(json.loads(body)) == STATUS_KEYS_V1
        finally:
            server.close()


class TestLiveRunEndpoint:
    def test_thread_backend_serves_admin_during_run(self):
        """An admin_port=0 thread run serves /health and /status while
        in flight (discovered via ACTIVE_SERVERS)."""
        cfg = (
            SystemConfig.paper_defaults()
            .scaled(0.02)
            .with_(
                backend="thread",
                time_scale=0.05,
                run_seconds=10.0,
                warmup_seconds=2.0,
                obs=ObservabilityConfig(admin_port=0),
            )
        )
        before = list(ACTIVE_SERVERS)
        results = {}

        def drive():
            results["result"] = JoinSystem(cfg).run()

        thread = threading.Thread(target=drive)
        thread.start()
        try:
            deadline = time.monotonic() + 10.0
            server = None
            while time.monotonic() < deadline and server is None:
                fresh = [s for s in ACTIVE_SERVERS if s not in before]
                server = fresh[0] if fresh else None
                time.sleep(0.01)
            assert server is not None, "admin server never came up"
            status, _, body = _get(f"{server.url}/status")
            assert status == 200
            doc = json.loads(body)
            assert doc["backend"] == "thread"
            assert set(doc) == STATUS_KEYS_V1
        finally:
            thread.join(timeout=120.0)
        assert not thread.is_alive()
        assert "result" in results
        # The run closed its server on the way out.
        assert all(s in before for s in ACTIVE_SERVERS)
        # admin_port implies metrics: snapshots came back with the result.
        assert results["result"].node_metrics

    def test_status_stays_coherent_through_master_failover(self):
        """Probe /health, /status and /metrics continuously while the
        master is killed and the standby elects itself: every sampled
        document must name a coherent acting master (node-row roles and
        liveness agree with ``acting_master``), and the probes must see
        both identities — the master before the kill, the standby after
        the takeover."""
        from repro.core.cluster import MASTER_ID, standby_node_id
        from repro.faults.plan import FaultPlan

        cfg = (
            SystemConfig.paper_defaults()
            .scaled(0.01)
            .with_(
                backend="thread",
                time_scale=0.25,
                npart=12,
                rate=400.0,
                num_slaves=3,
                run_seconds=16.0,
                warmup_seconds=6.0,
                window_seconds=3.0,
                reorg_epoch=4.0,
                standby=True,
                replication="checkpoint+log",
                faults=FaultPlan.parse(["crash:master@5s"]),
                obs=ObservabilityConfig(admin_port=0),
            )
        )
        standby_id = standby_node_id(cfg)
        before = list(ACTIVE_SERVERS)
        results = {}

        def drive():
            results["result"] = JoinSystem(cfg).run()

        thread = threading.Thread(target=drive)
        thread.start()
        docs = []
        try:
            deadline = time.monotonic() + 10.0
            server = None
            while time.monotonic() < deadline and server is None:
                fresh = [s for s in ACTIVE_SERVERS if s not in before]
                server = fresh[0] if fresh else None
                time.sleep(0.01)
            assert server is not None, "admin server never came up"
            status, _, _ = _get(f"{server.url}/health")
            assert status == 200
            _, _, body = _get(f"{server.url}/metrics")
            assert b"# TYPE" in body
            while thread.is_alive():
                try:
                    _, _, body = _get(f"{server.url}/status", timeout=2.0)
                except urllib.error.HTTPError:
                    # Transient 500: the probe raced a coordinator
                    # mutation mid-snapshot.  The server survives it.
                    time.sleep(0.01)
                    continue
                except OSError:
                    break  # run finished, server closed mid-probe
                docs.append(json.loads(body))
                time.sleep(0.01)
        finally:
            thread.join(timeout=120.0)
        assert not thread.is_alive()
        assert not results["result"].degraded

        assert docs, "no status documents sampled during the run"
        seen = set()
        for doc in docs:
            assert set(doc) == STATUS_KEYS_V1
            acting = doc["acting_master"]
            assert acting in (MASTER_ID, standby_id)
            seen.add(acting)
            rows = {n["node"]: n for n in doc["nodes"]}
            master_row, standby_row = rows[MASTER_ID], rows[standby_id]
            if acting == MASTER_ID:
                # Election not finished: the master's own (possibly
                # last-known) state answers and must read alive.
                assert master_row["alive"] is True
                assert standby_row["role"] == "standby"
            else:
                assert master_row["alive"] is False
                assert standby_row["role"] == "acting-master"
        assert seen == {MASTER_ID, standby_id}, (
            f"probes saw only {seen}: expected samples both before the "
            "kill and after the takeover"
        )
