"""Tracer fan-out, exporters, and the config-driven factory."""

import io
import json

import pytest

from repro.config import ObservabilityConfig
from repro.errors import ConfigError
from repro.obs.events import (
    EVENT_KINDS,
    DodEvent,
    EpochEvent,
    SplitEvent,
    TraceEvent,
)
from repro.obs.exporters import (
    ConsoleSummaryExporter,
    JsonlExporter,
    MemoryExporter,
    TRACE_VERSION,
)
from repro.obs.tracer import NULL_TRACER, Tracer, build_tracer


def _split(t=1.0, node=2, pid=3):
    return SplitEvent(t=t, node=node, pid=pid, n_buckets=4, depth=2, bytes=100)


class TestEvents:
    def test_to_record_is_flat_and_keyed_by_kind(self):
        record = _split().to_record()
        assert record["kind"] == "split"
        assert record["t"] == 1.0
        assert record["node"] == 2
        assert record["pid"] == 3

    def test_tuples_serialize_to_lists(self):
        event = DodEvent(
            t=0.0, node=0, epoch=1, n_active=3, activated=(4,), deactivated=()
        )
        record = event.to_record()
        assert json.loads(json.dumps(record))["activated"] == [4]

    def test_kinds_are_unique(self):
        assert len(EVENT_KINDS) == len(set(EVENT_KINDS))
        assert "event" not in EVENT_KINDS  # the abstract base


class TestTracer:
    def test_null_tracer_is_disabled_noop(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit(_split())
        assert NULL_TRACER.n_events == 0
        assert NULL_TRACER.memory_records() is None
        NULL_TRACER.close()  # never raises

    def test_fan_out_to_all_exporters(self):
        a, b = MemoryExporter(), MemoryExporter()
        tracer = Tracer([a, b])
        assert tracer.enabled
        tracer.emit(_split())
        assert len(a.records) == len(b.records) == 1
        assert tracer.n_events == 1
        assert tracer.memory_records() is a.records

    def test_exporters_receive_records_not_events(self):
        sink = MemoryExporter()
        Tracer([sink]).emit(_split())
        assert isinstance(sink.records[0], dict)
        assert not isinstance(sink.records[0], TraceEvent)


class TestJsonlExporter:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        exporter = JsonlExporter(path, meta={"rate": 100.0})
        tracer = Tracer([exporter])
        tracer.emit(
            EpochEvent(
                t=2.0, node=0, epoch=0, phase="dist", active=2, buffered_bytes=0
            )
        )
        tracer.emit(_split())
        tracer.close()

        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8").read().splitlines()
        ]
        assert lines[0] == {
            "kind": "meta",
            "version": TRACE_VERSION,
            "config": {"rate": 100.0},
        }
        assert [r["kind"] for r in lines[1:]] == ["epoch", "split"]
        assert exporter.n_records == 2

    def test_close_is_idempotent(self, tmp_path):
        exporter = JsonlExporter(str(tmp_path / "t.jsonl"))
        exporter.close()
        exporter.close()


class TestConsoleSummaryExporter:
    def test_summary_counts_kinds(self):
        stream = io.StringIO()
        exporter = ConsoleSummaryExporter(stream=stream)
        tracer = Tracer([exporter])
        tracer.emit(_split())
        tracer.emit(_split())
        tracer.close()
        assert "2 events" in stream.getvalue()
        assert "split=2" in stream.getvalue()

    def test_empty_summary(self):
        assert "no events" in ConsoleSummaryExporter().summary()


class TestBuildTracer:
    def test_nothing_enabled_returns_shared_null(self):
        assert build_tracer(ObservabilityConfig()) is NULL_TRACER

    def test_memory(self):
        tracer = build_tracer(ObservabilityConfig(trace_memory=True))
        assert tracer.enabled
        assert tracer.memory_records() == []

    def test_jsonl_with_meta(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = build_tracer(
            ObservabilityConfig(trace_path=path), meta={"seed": 1}
        )
        tracer.close()
        header = json.loads(open(path, encoding="utf-8").readline())
        assert header["config"] == {"seed": 1}

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ObservabilityConfig(sample_period=-1.0).validated()
        with pytest.raises(ConfigError):
            ObservabilityConfig(reservoir_capacity=1).validated()
        with pytest.raises(ConfigError):
            # Transport spans need a tracer to land in.
            ObservabilityConfig(trace_transport=True).validated()
        ObservabilityConfig(
            trace_memory=True, trace_transport=True, sample_period=1.0
        ).validated()
