"""Decimating reservoir and the keyed time-series sampler."""

import pytest

from repro.obs.sampler import Reservoir, TimeSeriesSampler


class TestReservoir:
    def test_keeps_everything_under_capacity(self):
        res = Reservoir(16)
        for i in range(10):
            res.add(float(i), float(i) * 2)
        assert res.items() == [(float(i), float(i) * 2) for i in range(10)]
        assert res.stride == 1
        assert res.total == 10

    def test_never_exceeds_capacity(self):
        res = Reservoir(8)
        for i in range(10_000):
            res.add(float(i), 0.0)
        assert len(res) <= 8
        assert res.total == 10_000

    def test_decimation_doubles_stride(self):
        res = Reservoir(4)
        for i in range(5):
            res.add(float(i), 0.0)
        # Overflowed once: half the samples dropped, stride doubled.
        assert res.stride == 2
        assert [t for t, _ in res.items()] == [0.0, 2.0, 4.0]

    def test_coverage_stays_uniform(self):
        # After heavy decimation the retained samples still span the
        # whole run rather than only its tail (ring-buffer behavior).
        res = Reservoir(32)
        n = 32 * 64
        for i in range(n):
            res.add(float(i), 0.0)
        times = [t for t, _ in res.items()]
        assert times[0] == 0.0
        assert times[-1] >= n * 0.75
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps) == min(gaps)  # uniform spacing

    def test_retained_samples_follow_stride(self):
        res = Reservoir(4)
        for i in range(100):
            res.add(float(i), 0.0)
        stride = res.stride
        assert all(int(t) % stride == 0 for t, _ in res.items())

    def test_capacity_below_two_rejected(self):
        with pytest.raises(ValueError):
            Reservoir(1)

    def test_values_view(self):
        res = Reservoir(8)
        res.add(0.0, 1.5)
        res.add(1.0, 2.5)
        assert res.values() == [1.5, 2.5]


class TestTimeSeriesSampler:
    def test_keyed_per_node_and_gauge(self):
        sampler = TimeSeriesSampler(period=2.0, capacity=8)
        sampler.observe(1.0, 2, "occupancy", 0.5)
        sampler.observe(1.0, 3, "occupancy", 0.7)
        sampler.observe(1.0, 2, "window_bytes", 1024.0)
        assert len(sampler) == 3
        assert sampler.get(2, "occupancy") == [(1.0, 0.5)]
        assert sampler.get(9, "occupancy") == []
        assert sampler.gauges_of(2) == ["occupancy", "window_bytes"]

    def test_series_dict_keys(self):
        sampler = TimeSeriesSampler(period=1.0)
        sampler.observe(0.5, 2, "occupancy", 0.1)
        sampler.observe(0.5, 0, "buffer_bytes", 10.0)
        assert sorted(sampler.series_dict()) == [
            "n0.buffer_bytes",
            "n2.occupancy",
        ]

    def test_bounded_per_key(self):
        sampler = TimeSeriesSampler(period=1.0, capacity=4)
        for i in range(1000):
            sampler.observe(float(i), 2, "occupancy", 0.0)
        assert len(sampler.get(2, "occupancy")) <= 4

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(period=0.0)
