"""The discrete-event kernel: ordering, clocks, run() modes."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simul.kernel import Simulator


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_timeout_advances_clock(self, sim):
        sim.timeout(3.0)
        sim.run(None)
        assert sim.now == 3.0

    def test_run_until_number_advances_even_without_events(self, sim):
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_run_until_past_raises(self, sim):
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)


class TestOrdering:
    def test_timeouts_fire_in_time_order(self, sim):
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.timeout(delay).add_callback(
                lambda ev, d=delay: order.append(d)
            )
        sim.run(None)
        assert order == [1.0, 2.0, 3.0]

    def test_fifo_among_simultaneous_events(self, sim):
        order = []
        for tag in range(5):
            sim.timeout(1.0).add_callback(lambda ev, t=tag: order.append(t))
        sim.run(None)
        assert order == [0, 1, 2, 3, 4]

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(2.0)
        assert sim.peek() == 2.0

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()


class TestRunUntilEvent:
    def test_returns_event_value(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            return "done"

        result = sim.run(until=sim.process(proc(sim)))
        assert result == "done"

    def test_raises_on_failed_event(self, sim):
        event = sim.event()
        event.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run(until=event)

    def test_deadlock_detection(self, sim):
        def blocked(sim):
            yield sim.event()  # never triggered

        process = sim.process(blocked(sim))
        with pytest.raises(DeadlockError):
            sim.run(until=process)

    def test_run_until_number_leaves_future_events_queued(self, sim):
        fired = []
        sim.timeout(10.0).add_callback(lambda ev: fired.append(1))
        sim.run(until=5.0)
        assert not fired
        sim.run(None)
        assert fired


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace_run():
            sim = Simulator()
            log = []

            def worker(sim, name, period):
                while sim.now < 10.0:
                    yield sim.timeout(period)
                    log.append((round(sim.now, 9), name))

            sim.process(worker(sim, "a", 0.7))
            sim.process(worker(sim, "b", 1.1))
            sim.run(None)
            return log

        assert trace_run() == trace_run()
