"""Stores, resources and gates."""

import pytest

from repro.errors import ChannelClosedError, SimulationError
from repro.simul.resources import Gate, Resource, Store


def drive(sim, gen):
    return sim.process(gen)


class TestStore:
    def test_fifo_order(self, sim):
        store = Store(sim)
        got = []

        def consumer(sim, store):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        for i in range(3):
            store.put(i)
        drive(sim, consumer(sim, store))
        sim.run(None)
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer(sim, store):
            got.append((yield store.get()))

        def producer(sim, store):
            yield sim.timeout(5.0)
            yield store.put("late")

        drive(sim, consumer(sim, store))
        drive(sim, producer(sim, store))
        sim.run(None)
        assert got == ["late"]
        assert sim.now == 5.0

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        events = []

        def producer(sim, store):
            yield store.put("a")
            events.append(("put-a", sim.now))
            yield store.put("b")
            events.append(("put-b", sim.now))

        def consumer(sim, store):
            yield sim.timeout(3.0)
            yield store.get()

        drive(sim, producer(sim, store))
        drive(sim, consumer(sim, store))
        sim.run(None)
        assert events == [("put-a", 0.0), ("put-b", 3.0)]

    def test_close_fails_pending_getters(self, sim):
        store = Store(sim, name="s")
        outcome = []

        def consumer(sim, store):
            try:
                yield store.get()
            except ChannelClosedError:
                outcome.append("closed")

        drive(sim, consumer(sim, store))
        sim.run(until=0.0)
        store.close()
        sim.run(None)
        assert outcome == ["closed"]

    def test_put_after_close_raises(self, sim):
        store = Store(sim)
        store.close()
        with pytest.raises(ChannelClosedError):
            store.put(1)

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_len(self, sim):
        store = Store(sim)
        store.put("x")
        assert len(store) == 1


class TestResource:
    def test_mutual_exclusion(self, sim):
        resource = Resource(sim, capacity=1)
        timeline = []

        def worker(sim, name, hold):
            yield resource.request()
            timeline.append((name, "in", sim.now))
            yield sim.timeout(hold)
            timeline.append((name, "out", sim.now))
            resource.release()

        drive(sim, worker(sim, "a", 2.0))
        drive(sim, worker(sim, "b", 1.0))
        sim.run(None)
        assert timeline == [
            ("a", "in", 0.0),
            ("a", "out", 2.0),
            ("b", "in", 2.0),
            ("b", "out", 3.0),
        ]

    def test_capacity_two_admits_two(self, sim):
        resource = Resource(sim, capacity=2)
        entered = []

        def worker(sim, name):
            yield resource.request()
            entered.append((name, sim.now))
            yield sim.timeout(1.0)
            resource.release()

        for name in "abc":
            drive(sim, worker(sim, name))
        sim.run(None)
        assert entered == [("a", 0.0), ("b", 0.0), ("c", 1.0)]

    def test_release_idle_raises(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim).release()


class TestGate:
    def test_open_releases_all_waiters(self, sim):
        gate = Gate(sim)
        woken = []

        def waiter(sim, gate, name):
            value = yield gate.wait()
            woken.append((name, value, sim.now))

        drive(sim, waiter(sim, gate, "a"))
        drive(sim, waiter(sim, gate, "b"))

        def opener(sim, gate):
            yield sim.timeout(4.0)
            gate.open("go")

        drive(sim, opener(sim, gate))
        sim.run(None)
        assert sorted(woken) == [("a", "go", 4.0), ("b", "go", 4.0)]

    def test_gate_is_reusable(self, sim):
        gate = Gate(sim)
        count = []

        def repeat_waiter(sim, gate):
            for _ in range(3):
                yield gate.wait()
                count.append(sim.now)

        def opener(sim, gate):
            for _ in range(3):
                yield sim.timeout(1.0)
                gate.open()

        drive(sim, repeat_waiter(sim, gate))
        drive(sim, opener(sim, gate))
        sim.run(None)
        assert count == [1.0, 2.0, 3.0]
        assert gate.generation == 3

    def test_open_returns_waiter_count(self, sim):
        gate = Gate(sim)
        gate.wait()
        gate.wait()
        assert gate.n_waiting == 2
        assert gate.open() == 2
        assert gate.n_waiting == 0
