"""Test package."""
