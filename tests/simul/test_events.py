"""Event lifecycle, failure propagation and condition events."""

import pytest

from repro.errors import SimulationError
from repro.simul.events import AllOf, AnyOf


class TestEventLifecycle:
    def test_pending_until_triggered(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42

    def test_double_trigger_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_callback_after_processed_runs_immediately(self, sim):
        event = sim.event()
        event.succeed("x")
        sim.run(None)
        got = []
        event.add_callback(lambda ev: got.append(ev.value))
        assert got == ["x"]

    def test_delayed_succeed(self, sim):
        event = sim.event()
        event.succeed("later", delay=5.0)
        times = []
        event.add_callback(lambda ev: times.append(sim.now))
        sim.run(None)
        assert times == [5.0]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)


class TestConditions:
    def test_any_of_fires_on_first(self, sim):
        fast, slow = sim.timeout(1.0, "fast"), sim.timeout(5.0, "slow")
        any_ev = AnyOf(sim, [fast, slow])
        fired_at = []
        any_ev.add_callback(lambda ev: fired_at.append(sim.now))
        sim.run(None)
        assert fired_at == [1.0]

    def test_any_of_value_maps_fired_events(self, sim):
        fast, slow = sim.timeout(1.0, "fast"), sim.timeout(5.0, "slow")
        any_ev = AnyOf(sim, [fast, slow])
        sim.run(until=any_ev)
        assert any_ev.value == {fast: "fast"}

    def test_all_of_waits_for_all(self, sim):
        events = [sim.timeout(d) for d in (1.0, 2.0, 3.0)]
        all_ev = AllOf(sim, events)
        fired_at = []
        all_ev.add_callback(lambda ev: fired_at.append(sim.now))
        sim.run(None)
        assert fired_at == [3.0]

    def test_empty_condition_fires_immediately(self, sim):
        all_ev = AllOf(sim, [])
        assert all_ev.triggered

    def test_condition_propagates_failure(self, sim):
        bad = sim.event()
        cond = AllOf(sim, [bad, sim.timeout(1.0)])
        bad.fail(ValueError("nope"))
        sim.run(None)
        assert cond.triggered
        assert not cond.ok
        assert isinstance(cond.value, ValueError)

    def test_mixed_simulators_rejected(self, sim):
        from repro.simul.kernel import Simulator

        other = Simulator()
        with pytest.raises(SimulationError):
            AnyOf(sim, [sim.timeout(1.0), other.timeout(1.0)])
