"""Named random substreams: reproducibility and independence."""

import numpy as np

from repro.simul.rng import RngRegistry


class TestRngRegistry:
    def test_same_key_same_stream(self):
        a = RngRegistry(7).get("alpha").random(100)
        b = RngRegistry(7).get("alpha").random(100)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        reg = RngRegistry(7)
        a = reg.get("alpha").random(100)
        b = reg.get("beta").random(100)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).get("alpha").random(100)
        b = RngRegistry(2).get("alpha").random(100)
        assert not np.array_equal(a, b)

    def test_cache_returns_same_generator(self):
        reg = RngRegistry(7)
        assert reg.get("x") is reg.get("x")

    def test_adding_consumer_does_not_perturb_existing(self):
        """Drawing from a new stream must not change another stream."""
        reg1 = RngRegistry(7)
        a1 = reg1.get("alpha").random(10)

        reg2 = RngRegistry(7)
        reg2.get("newcomer").random(1000)
        a2 = reg2.get("alpha").random(10)
        assert np.array_equal(a1, a2)

    def test_fork_independence(self):
        reg = RngRegistry(7)
        child = reg.fork("sub")
        a = reg.get("alpha").random(50)
        b = child.get("alpha").random(50)
        assert not np.array_equal(a, b)

    def test_fork_reproducible(self):
        a = RngRegistry(7).fork("sub").get("k").random(10)
        b = RngRegistry(7).fork("sub").get("k").random(10)
        assert np.array_equal(a, b)
