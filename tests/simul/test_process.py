"""Cooperative processes: values, exceptions, kill semantics."""

import pytest

from repro.errors import SimulationError
from repro.simul.process import Process, ProcessKilled


class TestProcessBasics:
    def test_return_value_is_event_value(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            return 123

        assert sim.run(until=sim.process(proc(sim))) == 123

    def test_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            Process(sim, lambda: None)  # type: ignore[arg-type]

    def test_is_alive_transitions(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run(None)
        assert not p.is_alive

    def test_yield_non_event_raises(self, sim):
        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimulationError, match="expected an Event"):
            sim.run(None)

    def test_processes_can_wait_on_each_other(self, sim):
        def producer(sim):
            yield sim.timeout(2.0)
            return "payload"

        def consumer(sim, prod):
            value = yield prod
            return value.upper()

        prod = sim.process(producer(sim))
        cons = sim.process(consumer(sim, prod))
        assert sim.run(until=cons) == "PAYLOAD"


class TestExceptions:
    def test_unwaited_crash_surfaces(self, sim):
        def boom(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("crash")

        sim.process(boom(sim))
        with pytest.raises(RuntimeError, match="crash"):
            sim.run(None)

    def test_waited_crash_propagates_to_waiter(self, sim):
        def boom(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("crash")

        def waiter(sim, target):
            try:
                yield target
            except RuntimeError as e:
                return f"caught {e}"

        target = sim.process(boom(sim))
        waiter_p = sim.process(waiter(sim, target))
        assert sim.run(until=waiter_p) == "caught crash"

    def test_failed_event_thrown_into_process(self, sim):
        event = sim.event()

        def proc(sim, ev):
            try:
                yield ev
            except ValueError:
                return "handled"

        p = sim.process(proc(sim, event))
        event.fail(ValueError("x"))
        assert sim.run(until=p) == "handled"


class TestKill:
    def test_kill_terminates(self, sim):
        def forever(sim):
            while True:
                yield sim.timeout(1.0)

        p = sim.process(forever(sim))
        sim.run(until=5.0)
        p.kill("enough")
        sim.run(None)
        assert not p.is_alive
        assert isinstance(p.value, ProcessKilled)

    def test_kill_after_finish_is_noop(self, sim):
        def quick(sim):
            yield sim.timeout(1.0)
            return "ok"

        p = sim.process(quick(sim))
        sim.run(None)
        p.kill()
        assert p.value == "ok"

    def test_killed_process_ignores_pending_event(self, sim):
        """An event the process was waiting on must not resurrect it."""

        def waiter(sim, ev):
            yield ev

        event = sim.timeout(10.0)
        p = sim.process(waiter(sim, event))
        sim.run(until=1.0)
        p.kill()
        sim.run(None)  # the timeout fires at t=10; process stays dead
        assert not p.is_alive

    def test_kill_can_be_caught_for_cleanup(self, sim):
        cleaned = []

        def robust(sim):
            try:
                while True:
                    yield sim.timeout(1.0)
            except ProcessKilled:
                cleaned.append(True)
                return "cleaned up"

        p = sim.process(robust(sim))
        sim.run(until=2.5)
        p.kill()
        sim.run(None)
        assert cleaned == [True]
        assert p.value == "cleaned up"
