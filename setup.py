"""Setup shim.

Kept alongside ``pyproject.toml`` so editable installs work in offline
environments whose setuptools/pip lack PEP-660 wheel support
(``pip install -e . --no-use-pep517`` falls back to this file).
"""

from setuptools import setup

setup()
